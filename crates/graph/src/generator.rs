//! Synthetic road-network generator.
//!
//! The paper evaluates on ten road networks from the 9th DIMACS Implementation
//! Challenge (Table 1), which are derived from US Census TIGER data and are not
//! redistributable inside this repository. This module generates synthetic networks
//! that reproduce the structural properties those experiments depend on:
//!
//! * planar, degree-bounded connectivity (a jittered grid with random edge removal);
//! * a large fraction of degree-1/degree-2 vertices (the paper reports ~20% / ~30% on
//!   the US network), created by subdividing edges into chains;
//! * both travel-distance and travel-time edge weights, where travel time is the edge
//!   length divided by a per-road-class speed, so that travel-time graphs exhibit the
//!   "highway hierarchy" that CH / TNR / PHL exploit;
//! * coordinates consistent with edge lengths, so Euclidean distance is a meaningful
//!   lower bound (critical for IER and DisBrw).
//!
//! The DIMACS-named presets ([`DatasetPreset`]) are scaled-down stand-ins for the
//! paper's datasets (DESIGN.md §5).

use crate::builder::GraphBuilder;
use crate::graph::{EdgeWeightKind, Graph};
use crate::point::Point;
use crate::{NodeId, Weight};

/// A simple, dependency-free xorshift* PRNG.
///
/// The generator must be deterministic across platforms for reproducible experiments;
/// a tiny local PRNG avoids pulling `rand` into the library crates (it stays a
/// dev-dependency only, per DESIGN.md).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Road classes used to assign speeds (and hence travel times) to edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoadClass {
    Local,
    Arterial,
    Highway,
}

impl RoadClass {
    /// Speed in coordinate-units per time-unit (think metres per second).
    fn speed(self) -> f64 {
        match self {
            RoadClass::Local => 12.0,
            RoadClass::Arterial => 22.0,
            RoadClass::Highway => 33.0,
        }
    }
}

/// Configuration of the synthetic road-network generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Approximate number of vertices in the generated network (the result will be
    /// within a few percent of this).
    pub target_vertices: usize,
    /// PRNG seed; identical seeds produce identical networks.
    pub seed: u64,
    /// Probability that a non-tree grid edge is kept. Lower values make the network
    /// sparser and more "rural".
    pub keep_edge_probability: f64,
    /// Fraction of edges subdivided into degree-2 chains.
    pub chain_fraction: f64,
    /// Maximum number of intermediate vertices inserted per subdivided edge.
    pub max_chain_length: usize,
    /// Grid spacing between adjacent base vertices, in coordinate units.
    pub grid_spacing: f64,
    /// Every `highway_stride`-th grid row/column is promoted to an arterial/highway
    /// corridor with higher speeds (this creates the hierarchy travel-time graphs need).
    pub highway_stride: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_vertices: 10_000,
            seed: 7,
            keep_edge_probability: 0.85,
            chain_fraction: 0.35,
            max_chain_length: 3,
            grid_spacing: 500.0,
            highway_stride: 8,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor fixing only size and seed.
    pub fn new(target_vertices: usize, seed: u64) -> Self {
        GeneratorConfig { target_vertices, seed, ..Default::default() }
    }
}

/// Scaled-down stand-ins for the paper's Table 1 datasets.
///
/// The relative ordering of sizes matches the paper; absolute sizes are scaled so the
/// full experiment sweep runs on a laptop. Pass a `scale > 1.0` to
/// [`DatasetPreset::config`] to enlarge them when more time/memory is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetPreset {
    /// Delaware-like (smallest).
    DE,
    /// Vermont-like.
    VT,
    /// Maine-like.
    ME,
    /// Colorado-like.
    CO,
    /// North-West US-like (the paper's median-size default).
    NW,
    /// California/Nevada-like.
    CA,
    /// Eastern US-like.
    E,
    /// Western US-like.
    W,
    /// Central US-like.
    C,
    /// Full United States-like (largest).
    US,
}

impl DatasetPreset {
    /// All presets in increasing size order.
    pub fn all() -> [DatasetPreset; 10] {
        use DatasetPreset::*;
        [DE, VT, ME, CO, NW, CA, E, W, C, US]
    }

    /// Short name used in experiment output, matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        use DatasetPreset::*;
        match self {
            DE => "DE",
            VT => "VT",
            ME => "ME",
            CO => "CO",
            NW => "NW",
            CA => "CA",
            E => "E",
            W => "W",
            C => "C",
            US => "US",
        }
    }

    /// Baseline vertex count of the scaled-down preset (scale factor 1.0).
    pub fn base_vertices(self) -> usize {
        use DatasetPreset::*;
        match self {
            DE => 1_500,
            VT => 3_000,
            ME => 6_000,
            CO => 12_000,
            NW => 24_000,
            CA => 40_000,
            E => 64_000,
            W => 96_000,
            C => 144_000,
            US => 200_000,
        }
    }

    /// Number of vertices of the real DIMACS dataset this preset stands in for
    /// (reported for documentation in experiment output).
    pub fn paper_vertices(self) -> usize {
        use DatasetPreset::*;
        match self {
            DE => 48_812,
            VT => 95_672,
            ME => 187_315,
            CO => 435_666,
            NW => 1_089_933,
            CA => 1_890_815,
            E => 3_598_623,
            W => 6_262_104,
            C => 14_081_816,
            US => 23_947_347,
        }
    }

    /// Generator configuration for this preset, with size multiplied by `scale`.
    pub fn config(self, scale: f64) -> GeneratorConfig {
        let target = ((self.base_vertices() as f64) * scale).round().max(64.0) as usize;
        GeneratorConfig::new(target, 0xC0FFEE ^ self.base_vertices() as u64)
    }

    /// Generates the road network for this preset.
    pub fn generate(self, scale: f64) -> RoadNetwork {
        RoadNetwork::generate(&self.config(scale))
    }
}

/// A generated road network carrying both travel-distance and travel-time weights.
///
/// Convert it to a [`Graph`] with [`RoadNetwork::graph`] for the weight kind an
/// experiment needs.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    coords: Vec<Point>,
    /// Undirected edges as `(u, v, travel_distance, travel_time)`.
    edges: Vec<(NodeId, NodeId, Weight, Weight)>,
}

impl RoadNetwork {
    /// Generates a synthetic road network according to `config`.
    pub fn generate(config: &GeneratorConfig) -> RoadNetwork {
        let mut rng = SplitMix64::new(config.seed);

        // The base grid accounts for roughly 1 / (1 + chain overhead) of the final
        // vertex count; the rest comes from chain subdivision.
        let chain_overhead = config.chain_fraction * (config.max_chain_length as f64 + 1.0) / 2.0;
        let base_vertices =
            ((config.target_vertices as f64) / (1.0 + chain_overhead)).max(4.0) as usize;
        let cols = (base_vertices as f64).sqrt().round().max(2.0) as usize;
        let rows = base_vertices.div_ceil(cols).max(2);

        let spacing = config.grid_spacing;
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                // Jitter each grid point by up to 30% of the spacing.
                let jx = (rng.next_f64() - 0.5) * 0.6 * spacing;
                let jy = (rng.next_f64() - 0.5) * 0.6 * spacing;
                coords.push(Point::new(c as f64 * spacing + jx, r as f64 * spacing + jy));
            }
        }
        let index = |r: usize, c: usize| (r * cols + c) as NodeId;

        // Candidate grid edges: horizontal and vertical neighbors.
        let mut candidate_edges: Vec<(NodeId, NodeId, RoadClass)> = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let class_row = if r % config.highway_stride == 0 {
                    RoadClass::Highway
                } else if r % (config.highway_stride / 2).max(1) == 0 {
                    RoadClass::Arterial
                } else {
                    RoadClass::Local
                };
                let class_col = if c % config.highway_stride == 0 {
                    RoadClass::Highway
                } else if c % (config.highway_stride / 2).max(1) == 0 {
                    RoadClass::Arterial
                } else {
                    RoadClass::Local
                };
                if c + 1 < cols {
                    candidate_edges.push((index(r, c), index(r, c + 1), class_row));
                }
                if r + 1 < rows {
                    candidate_edges.push((index(r, c), index(r + 1, c), class_col));
                }
            }
        }

        // Keep a random spanning structure: process candidates in random order, always
        // keeping edges that connect new components (union-find), and keeping the rest
        // with `keep_edge_probability` (highway edges are always kept so corridors stay
        // contiguous).
        let n_base = coords.len();
        let mut parent: Vec<u32> = (0..n_base as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        // Shuffle candidates (Fisher-Yates).
        for i in (1..candidate_edges.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            candidate_edges.swap(i, j);
        }
        let mut kept: Vec<(NodeId, NodeId, RoadClass)> = Vec::new();
        for (u, v, class) in candidate_edges {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                parent[ru as usize] = rv;
                kept.push((u, v, class));
            } else if class == RoadClass::Highway || rng.chance(config.keep_edge_probability) {
                kept.push((u, v, class));
            }
        }

        // Subdivide a fraction of local edges into chains of degree-2 vertices.
        let mut edges: Vec<(NodeId, NodeId, Weight, Weight)> = Vec::new();
        let push_edge = |edges: &mut Vec<(NodeId, NodeId, Weight, Weight)>,
                         coords: &[Point],
                         u: NodeId,
                         v: NodeId,
                         class: RoadClass| {
            let len = coords[u as usize].distance(&coords[v as usize]).max(1.0);
            let dist = len.round() as Weight;
            let time = (len / class.speed() * 10.0).round().max(1.0) as Weight;
            edges.push((u, v, dist.max(1), time));
        };
        for (u, v, class) in kept {
            let subdivide = class == RoadClass::Local && rng.chance(config.chain_fraction);
            if !subdivide || config.max_chain_length == 0 {
                push_edge(&mut edges, &coords, u, v, class);
                continue;
            }
            let pieces = 1 + rng.next_below(config.max_chain_length as u64) as usize;
            let a = coords[u as usize];
            let b = coords[v as usize];
            let mut prev = u;
            for i in 1..=pieces {
                let t = i as f64 / (pieces + 1) as f64;
                // Small perpendicular wiggle so chains are not perfectly straight.
                let wiggle = (rng.next_f64() - 0.5) * 0.1 * config.grid_spacing;
                let dx = b.x - a.x;
                let dy = b.y - a.y;
                let norm = (dx * dx + dy * dy).sqrt().max(1.0);
                let px = -dy / norm * wiggle;
                let py = dx / norm * wiggle;
                let p = Point::new(a.x + dx * t + px, a.y + dy * t + py);
                let mid = coords.len() as NodeId;
                coords.push(p);
                push_edge(&mut edges, &coords, prev, mid, class);
                prev = mid;
            }
            push_edge(&mut edges, &coords, prev, v, class);
        }

        RoadNetwork { coords, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex coordinates.
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Raw edge list as `(u, v, travel_distance, travel_time)`.
    pub fn edges(&self) -> &[(NodeId, NodeId, Weight, Weight)] {
        &self.edges
    }

    /// Materialises a [`Graph`] carrying the requested weight kind.
    pub fn graph(&self, kind: EdgeWeightKind) -> Graph {
        let mut b = GraphBuilder::new();
        for &p in &self.coords {
            b.add_vertex(p);
        }
        for &(u, v, dist, time) in &self.edges {
            let w = match kind {
                EdgeWeightKind::Distance => dist,
                EdgeWeightKind::Time => time,
            };
            b.add_edge(u, v, w);
        }
        b.build().with_kind(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_network_is_connected_and_near_target_size() {
        let cfg = GeneratorConfig::new(2_000, 42);
        let net = RoadNetwork::generate(&cfg);
        let g = net.graph(EdgeWeightKind::Distance);
        assert!(g.is_connected());
        let n = g.num_vertices();
        assert!(n > 1_500 && n < 2_600, "unexpected vertex count {n}");
        // Road networks are sparse: average degree between 2 and 4.
        let avg_degree = g.num_arcs() as f64 / n as f64;
        assert!(avg_degree > 1.8 && avg_degree < 4.5, "avg degree {avg_degree}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = GeneratorConfig::new(500, 99);
        let a = RoadNetwork::generate(&cfg);
        let b = RoadNetwork::generate(&cfg);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn travel_time_weights_reflect_speed_classes() {
        let cfg = GeneratorConfig::new(3_000, 1);
        let net = RoadNetwork::generate(&cfg);
        // Time weight should be positively correlated with distance weight but not equal.
        let mut ratio_min = f64::INFINITY;
        let mut ratio_max = 0.0f64;
        for &(_, _, d, t) in net.edges() {
            let r = d as f64 / t as f64;
            ratio_min = ratio_min.min(r);
            ratio_max = ratio_max.max(r);
        }
        assert!(ratio_max > ratio_min * 1.5, "expected multiple speed classes");
    }

    #[test]
    fn has_substantial_fraction_of_low_degree_vertices() {
        let cfg = GeneratorConfig::new(4_000, 3);
        let net = RoadNetwork::generate(&cfg);
        let g = net.graph(EdgeWeightKind::Distance);
        let low = g.vertices().filter(|&v| g.degree(v) <= 2).count();
        let frac = low as f64 / g.num_vertices() as f64;
        assert!(frac > 0.2, "expected >20% degree<=2 vertices, got {frac}");
    }

    #[test]
    fn presets_are_ordered_by_size() {
        let sizes: Vec<_> = DatasetPreset::all().iter().map(|p| p.base_vertices()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        assert_eq!(DatasetPreset::NW.name(), "NW");
        assert!(DatasetPreset::US.paper_vertices() > 20_000_000);
    }

    #[test]
    fn preset_generation_smoke() {
        let net = DatasetPreset::DE.generate(0.1);
        assert!(net.num_vertices() > 100);
        assert!(net.graph(EdgeWeightKind::Time).is_connected());
    }
}
