//! Degree-2 chain extraction (Appendix A.1.2).
//!
//! Real road networks contain long runs of degree-2 vertices (shape points along a road
//! with no intersections). When following a shortest path vertex-by-vertex — as the
//! SILC/DisBrw refinement does — there is no decision to make at such vertices: the next
//! vertex is simply "the neighbor we did not come from". The paper exploits this to skip
//! an `O(log |V|)` quadtree lookup per degree-2 vertex and to jump directly to the end of
//! a chain.
//!
//! [`ChainIndex`] precomputes, for every vertex of degree ≤ 2, the two endpoints of the
//! maximal chain containing it, plus a successor function `next(prev, cur)`.

use crate::graph::Graph;
use crate::NodeId;

/// Sentinel meaning "no vertex".
const NONE: NodeId = NodeId::MAX;

/// Precomputed degree-2 chain structure over a graph.
#[derive(Debug, Clone)]
pub struct ChainIndex {
    /// For every vertex: the two chain endpoints if the vertex is interior to a chain
    /// (degree ≤ 2), otherwise `(NONE, NONE)`.
    endpoints: Vec<(NodeId, NodeId)>,
    /// Degree of each vertex, cached for `O(1)` chain tests.
    degree: Vec<u8>,
}

impl ChainIndex {
    /// Builds the chain index for `graph`.
    pub fn build(graph: &Graph) -> ChainIndex {
        let n = graph.num_vertices();
        let degree: Vec<u8> = (0..n).map(|v| graph.degree(v as NodeId).min(255) as u8).collect();
        let mut endpoints = vec![(NONE, NONE); n];

        let mut visited = vec![false; n];
        for v in 0..n as NodeId {
            if degree[v as usize] > 2 || visited[v as usize] || degree[v as usize] == 0 {
                continue;
            }
            // Walk to both ends of the chain containing v.
            let members = collect_chain(graph, &degree, v);
            let first = *members.first().expect("chain has at least one member");
            let last = *members.last().expect("chain has at least one member");
            // Endpoints are the non-chain vertices adjacent to the chain ends (or the
            // chain end itself when the chain dead-ends / forms an isolated cycle).
            let end_a = adjacent_outside(graph, &degree, first).unwrap_or(first);
            let end_b = adjacent_outside(graph, &degree, last).unwrap_or(last);
            for &m in &members {
                visited[m as usize] = true;
                endpoints[m as usize] = (end_a, end_b);
            }
        }
        ChainIndex { endpoints, degree }
    }

    /// True when `v` lies in the interior of a chain (degree ≤ 2).
    #[inline]
    pub fn on_chain(&self, v: NodeId) -> bool {
        self.degree[v as usize] <= 2 && self.endpoints[v as usize].0 != NONE
    }

    /// The two chain endpoints for a chain vertex, or `None` for intersection vertices.
    pub fn endpoints(&self, v: NodeId) -> Option<(NodeId, NodeId)> {
        if self.on_chain(v) {
            Some(self.endpoints[v as usize])
        } else {
            None
        }
    }

    /// Given that the shortest path arrived at chain vertex `cur` from `prev`, returns
    /// the only possible next vertex, or `None` when `cur` is not on a chain interior or
    /// is a dead end.
    pub fn next_on_chain(&self, graph: &Graph, prev: NodeId, cur: NodeId) -> Option<NodeId> {
        if self.degree[cur as usize] > 2 {
            return None;
        }
        let mut other = None;
        for &t in graph.neighbor_ids(cur) {
            if t != prev {
                if other.is_some() {
                    return None; // parallel edges; treat as a decision point
                }
                other = Some(t);
            }
        }
        other
    }

    /// Fraction of vertices with degree ≤ 2 (the statistic the paper quotes: ~50% on the
    /// US network, ~95% on the North-America highway network).
    pub fn low_degree_fraction(&self) -> f64 {
        let low = self.degree.iter().filter(|&&d| d <= 2).count();
        low as f64 / self.degree.len().max(1) as f64
    }
}

/// Collects the maximal run of degree-≤2 vertices containing `start`, in path order.
fn collect_chain(graph: &Graph, degree: &[u8], start: NodeId) -> Vec<NodeId> {
    // Walk backwards as far as possible, then forwards collecting.
    let mut first = start;
    let mut prev = NONE;
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > degree.len() + 1 {
            break; // isolated cycle of degree-2 vertices; stop anywhere
        }
        let mut stepped = false;
        for &t in graph.neighbor_ids(first) {
            if t != prev && degree[t as usize] <= 2 {
                if t == start {
                    stepped = false; // looped around a cycle
                    break;
                }
                prev = first;
                first = t;
                stepped = true;
                break;
            }
        }
        if !stepped {
            break;
        }
    }
    // Forward collection from `first`.
    let mut members = vec![first];
    let mut prev = NONE;
    let mut cur = first;
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > degree.len() + 1 {
            break;
        }
        let mut next = None;
        for &t in graph.neighbor_ids(cur) {
            if t != prev && degree[t as usize] <= 2 && !members.contains(&t) {
                next = Some(t);
                break;
            }
        }
        match next {
            Some(t) => {
                members.push(t);
                prev = cur;
                cur = t;
            }
            None => break,
        }
    }
    members
}

/// Returns a neighbor of `v` that is an intersection (degree > 2), if any.
fn adjacent_outside(graph: &Graph, degree: &[u8], v: NodeId) -> Option<NodeId> {
    graph.neighbor_ids(v).iter().copied().find(|&t| degree[t as usize] > 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::point::Point;

    /// Builds a graph shaped like:  hub0 - a - b - c - hub1,  hub0 - hub1 (direct), and a
    /// pendant d off hub1, where a,b,c are degree-2 chain vertices.
    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        // Add extra edges to make hubs degree > 2.
        b.add_vertex(Point::new(0.0, 1.0)); // 6, pendant on hub0
        let hub0 = 0;
        let hub1 = 4;
        b.add_edge(hub0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, hub1, 1);
        b.add_edge(hub0, hub1, 10);
        b.add_edge(hub1, 5, 1);
        b.add_edge(hub0, 6, 1);
        b.build()
    }

    #[test]
    fn chain_vertices_point_to_hub_endpoints() {
        let g = chain_graph();
        let idx = ChainIndex::build(&g);
        for v in [1, 2, 3] {
            assert!(idx.on_chain(v));
            let (a, b) = idx.endpoints(v).unwrap();
            let mut ends = [a, b];
            ends.sort_unstable();
            assert_eq!(ends, [0, 4], "vertex {v} endpoints {a},{b}");
        }
        assert!(!idx.on_chain(0));
        assert!(!idx.on_chain(4));
    }

    #[test]
    fn next_on_chain_follows_the_only_exit() {
        let g = chain_graph();
        let idx = ChainIndex::build(&g);
        assert_eq!(idx.next_on_chain(&g, 0, 1), Some(2));
        assert_eq!(idx.next_on_chain(&g, 1, 2), Some(3));
        assert_eq!(idx.next_on_chain(&g, 3, 2), Some(1));
        // hub is a decision point
        assert_eq!(idx.next_on_chain(&g, 3, 4), None);
    }

    #[test]
    fn pendant_vertices_are_chains_too() {
        let g = chain_graph();
        let idx = ChainIndex::build(&g);
        // vertex 5 is a dead end hanging off hub1; vertex 6 off hub0.
        assert!(idx.on_chain(5));
        assert!(idx.on_chain(6));
        let (a, b) = idx.endpoints(5).unwrap();
        assert!(a == 4 || b == 4);
    }

    #[test]
    fn low_degree_fraction_counts_correctly() {
        let g = chain_graph();
        let idx = ChainIndex::build(&g);
        // 5 of 7 vertices have degree <= 2.
        assert!((idx.low_degree_fraction() - 5.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn handles_pure_cycle_without_hanging() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 0, 1);
        let g = b.build();
        let idx = ChainIndex::build(&g);
        // Every vertex is degree 2; the index must terminate and mark them as chains.
        assert!(idx.on_chain(0));
    }
}
