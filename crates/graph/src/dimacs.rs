//! Reader/writer for the 9th DIMACS Implementation Challenge graph exchange format.
//!
//! The paper's datasets are distributed as pairs of files: a `.gr` file with one `a u v w`
//! line per directed arc, and a `.co` file with one `v id x y` line per vertex giving
//! integer coordinates. This module parses and writes that format so real datasets can be
//! substituted for the synthetic generator when they are available locally.

use std::fmt::Write as _;

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::point::Point;
use crate::{NodeId, Weight};

/// Errors produced while parsing DIMACS files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// A line could not be parsed; carries the 1-based line number and a description.
    Malformed { line: usize, message: String },
    /// The `.gr` and `.co` inputs disagree on the number of vertices.
    InconsistentVertexCount { graph: usize, coordinates: usize },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Malformed { line, message } => {
                write!(f, "malformed DIMACS input at line {line}: {message}")
            }
            DimacsError::InconsistentVertexCount { graph, coordinates } => write!(
                f,
                "graph file declares {graph} vertices but coordinate file has {coordinates}"
            ),
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses a `.gr` arc list and a `.co` coordinate list (as in the DIMACS shortest-path
/// challenge) into a [`Graph`]. Vertex ids in the files are 1-based; they are converted
/// to 0-based ids.
pub fn parse(gr: &str, co: &str) -> Result<Graph, DimacsError> {
    let mut declared_vertices = 0usize;
    let mut arcs: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    for (i, line) in gr.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                // "p sp <vertices> <arcs>"
                let _sp = parts.next();
                declared_vertices = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(line_no, "missing vertex count in p line"))?;
            }
            Some("a") => {
                let u: usize = parse_field(&mut parts, line_no, "source")?;
                let v: usize = parse_field(&mut parts, line_no, "target")?;
                let w: Weight = parse_field(&mut parts, line_no, "weight")?;
                if u == 0 || v == 0 {
                    return Err(malformed(line_no, "vertex ids are 1-based; found 0"));
                }
                arcs.push(((u - 1) as NodeId, (v - 1) as NodeId, w));
            }
            Some(other) => {
                return Err(malformed(line_no, &format!("unknown record type '{other}'")));
            }
            None => {}
        }
    }

    let mut coords: Vec<Point> = Vec::new();
    for (i, line) in co.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let id: usize = parse_field(&mut parts, line_no, "vertex id")?;
                let x: f64 = parse_field(&mut parts, line_no, "x coordinate")?;
                let y: f64 = parse_field(&mut parts, line_no, "y coordinate")?;
                if id == 0 {
                    return Err(malformed(line_no, "vertex ids are 1-based; found 0"));
                }
                if coords.len() < id {
                    coords.resize(id, Point::default());
                }
                coords[id - 1] = Point::new(x, y);
            }
            Some(other) => {
                return Err(malformed(line_no, &format!("unknown record type '{other}'")));
            }
            None => {}
        }
    }

    if declared_vertices != 0 && !coords.is_empty() && declared_vertices != coords.len() {
        return Err(DimacsError::InconsistentVertexCount {
            graph: declared_vertices,
            coordinates: coords.len(),
        });
    }
    let num_vertices = declared_vertices
        .max(coords.len())
        .max(arcs.iter().map(|&(u, v, _)| u.max(v) as usize + 1).max().unwrap_or(0));
    coords.resize(num_vertices, Point::default());

    let mut b = GraphBuilder::new();
    for p in coords {
        b.add_vertex(p);
    }
    for (u, v, w) in arcs {
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// Serialises a graph to the DIMACS `.gr` / `.co` pair (returned as two strings).
pub fn write(graph: &Graph) -> (String, String) {
    let mut gr = String::new();
    let _ = writeln!(gr, "c rnknn export");
    let _ = writeln!(gr, "p sp {} {}", graph.num_vertices(), graph.num_edges() * 2);
    for (u, v, w) in graph.edges() {
        let _ = writeln!(gr, "a {} {} {}", u + 1, v + 1, w);
        let _ = writeln!(gr, "a {} {} {}", v + 1, u + 1, w);
    }
    let mut co = String::new();
    let _ = writeln!(co, "c rnknn export");
    let _ = writeln!(co, "p aux sp co {}", graph.num_vertices());
    for v in graph.vertices() {
        let p = graph.coord(v);
        let _ = writeln!(co, "v {} {} {}", v + 1, p.x.round() as i64, p.y.round() as i64);
    }
    (gr, co)
}

fn malformed(line: usize, message: &str) -> DimacsError {
    DimacsError::Malformed { line, message: message.to_string() }
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, DimacsError> {
    parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed(line, &format!("missing or invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GR: &str = "c sample\np sp 3 4\na 1 2 7\na 2 1 7\na 2 3 9\na 3 2 9\n";
    const CO: &str = "c sample\np aux sp co 3\nv 1 0 0\nv 2 100 0\nv 3 200 0\n";

    #[test]
    fn parses_small_graph() {
        let g = parse(GR, CO).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.edge_weight(1, 2), Some(9));
        assert_eq!(g.coord(2).x, 200.0);
    }

    #[test]
    fn round_trips_through_write() {
        let g = parse(GR, CO).unwrap();
        let (gr2, co2) = write(&g);
        let g2 = parse(&gr2, &co2).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn rejects_zero_based_ids() {
        let err = parse("a 0 1 5\n", "").unwrap_err();
        assert!(matches!(err, DimacsError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_inconsistent_vertex_counts() {
        let err = parse("p sp 5 0\n", CO).unwrap_err();
        assert!(matches!(err, DimacsError::InconsistentVertexCount { graph: 5, coordinates: 3 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ignores_comments_and_blank_lines() {
        let g = parse("c x\n\np sp 2 2\na 1 2 3\na 2 1 3\n", "c y\nv 1 0 0\nv 2 1 1\n").unwrap();
        assert_eq!(g.num_vertices(), 2);
    }
}
