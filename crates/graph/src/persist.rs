//! Artifact save/load for the CSR [`Graph`].
//!
//! The graph is the smallest component of an index artifact (tens of MB at
//! 580k vertices, vs ~1 GB of G-tree matrices) and every loaded index needs
//! it, so loading copies it into owned `Vec`s via [`Graph::from_csr`] rather
//! than viewing the artifact: the copy is a handful of milliseconds, and it
//! keeps the graph type and all of its consumers untouched.
//!
//! Structural validation on load checks everything the rest of the codebase
//! uses as an *index*: offset monotonicity and bounds, target vertex ids,
//! array-length cross-consistency. Edge weights and coordinates are used only
//! arithmetically, so corrupt values there cannot cause out-of-bounds access;
//! they are covered by the artifact checksums.

use crate::graph::EdgeWeightKind;
use crate::point::Point;
use crate::{Graph, NodeId, Weight};
use rnknn_persist::{Artifact, ArtifactWriter, MetaWriter, PersistError, Tag};
use std::io::{Seek, Write};

/// Graph scalar metadata: weight kind, vertex count, arc count.
pub const TAG_META: Tag = Tag::new(b"G.META\0\0");
/// CSR offsets (`u32`, `num_vertices + 1` entries).
pub const TAG_OFFSETS: Tag = Tag::new(b"G.OFFS\0\0");
/// CSR targets (`u32`, one per directed arc).
pub const TAG_TARGETS: Tag = Tag::new(b"G.TARG\0\0");
/// CSR weights (`u64`, one per directed arc).
pub const TAG_WEIGHTS: Tag = Tag::new(b"G.WGTS\0\0");
/// Vertex coordinates (`u64` f64-bit pairs, two per vertex).
pub const TAG_COORDS: Tag = Tag::new(b"G.COOR\0\0");

fn kind_code(kind: EdgeWeightKind) -> u64 {
    match kind {
        EdgeWeightKind::Distance => 0,
        EdgeWeightKind::Time => 1,
    }
}

/// Writes the graph's sections into an open artifact.
pub fn save_graph<W: Write + Seek>(
    graph: &Graph,
    writer: &mut ArtifactWriter<W>,
) -> Result<(), PersistError> {
    let (offsets, targets, weights) = graph.csr_parts();
    let mut meta = MetaWriter::new();
    meta.u64(kind_code(graph.kind())).usize(graph.num_vertices()).usize(targets.len());
    writer.begin_section(TAG_META)?;
    writer.write_u64s(meta.words())?;
    writer.end_section()?;

    writer.begin_section(TAG_OFFSETS)?;
    writer.write_u32s(offsets)?;
    writer.end_section()?;

    writer.begin_section(TAG_TARGETS)?;
    writer.write_u32s(targets)?;
    writer.end_section()?;

    writer.begin_section(TAG_WEIGHTS)?;
    writer.write_u64s(weights)?;
    writer.end_section()?;

    writer.begin_section(TAG_COORDS)?;
    for p in graph.coords() {
        writer.write_u64(p.x.to_bits())?;
        writer.write_u64(p.y.to_bits())?;
    }
    writer.end_section()?;
    Ok(())
}

/// Reads, validates, and reassembles the graph from an artifact.
pub fn load_graph(artifact: &Artifact) -> Result<Graph, PersistError> {
    let mut meta = artifact.meta(TAG_META)?;
    let kind = match meta.u64()? {
        0 => EdgeWeightKind::Distance,
        1 => EdgeWeightKind::Time,
        v => {
            return Err(PersistError::corrupt(
                "G.META",
                format!("unknown edge-weight kind code {v}"),
            ))
        }
    };
    let num_vertices = meta.usize()?;
    let num_arcs = meta.usize()?;
    meta.finish()?;

    let offsets_view = artifact.u32s(TAG_OFFSETS)?;
    let targets_view = artifact.u32s(TAG_TARGETS)?;
    let weights_view = artifact.u64s(TAG_WEIGHTS)?;
    let coords_view = artifact.u64s(TAG_COORDS)?;

    if offsets_view.len() != num_vertices + 1 {
        return Err(PersistError::corrupt(
            "G.OFFS",
            format!(
                "expected {} offsets for {num_vertices} vertices, found {}",
                num_vertices + 1,
                offsets_view.len()
            ),
        ));
    }
    if targets_view.len() != num_arcs || weights_view.len() != num_arcs {
        return Err(PersistError::corrupt(
            "G.TARG",
            format!(
                "arc arrays disagree with G.META: {} targets / {} weights vs {num_arcs} arcs",
                targets_view.len(),
                weights_view.len()
            ),
        ));
    }
    if coords_view.len() != num_vertices * 2 {
        return Err(PersistError::corrupt(
            "G.COOR",
            format!(
                "expected {} coordinate words for {num_vertices} vertices, found {}",
                num_vertices * 2,
                coords_view.len()
            ),
        ));
    }
    let offsets: &[u32] = &offsets_view;
    if offsets[0] != 0 {
        return Err(PersistError::corrupt("G.OFFS", "offsets[0] is not 0".to_string()));
    }
    if let Some(pos) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(PersistError::corrupt(
            "G.OFFS",
            format!("offsets not monotonic at vertex {pos}"),
        ));
    }
    if offsets[num_vertices] as usize != num_arcs {
        return Err(PersistError::corrupt(
            "G.OFFS",
            format!(
                "offsets end at {} but the artifact holds {num_arcs} arcs",
                offsets[num_vertices]
            ),
        ));
    }
    let targets: &[NodeId] = &targets_view;
    if let Some(&bad) = targets.iter().find(|&&t| t as usize >= num_vertices) {
        return Err(PersistError::corrupt(
            "G.TARG",
            format!("target vertex {bad} out of range (graph has {num_vertices} vertices)"),
        ));
    }

    let weights: Vec<Weight> = weights_view.to_vec();
    let coords: Vec<Point> = coords_view
        .chunks_exact(2)
        .map(|c| Point::new(f64::from_bits(c[0]), f64::from_bits(c[1])))
        .collect();
    Ok(Graph::from_csr(offsets.to_vec(), targets.to_vec(), weights, coords).with_kind(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_persist::Artifact;
    use std::io::Cursor;

    fn round_trip(kind: EdgeWeightKind) {
        let graph = RoadNetwork::generate(&GeneratorConfig::new(200, 7)).graph(kind);
        let mut w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        save_graph(&graph, &mut w).unwrap();
        let data = w.finish().unwrap().into_inner();
        let loaded = load_graph(&Artifact::from_vec(data).unwrap()).unwrap();
        assert_eq!(loaded.kind(), graph.kind());
        assert_eq!(loaded.num_vertices(), graph.num_vertices());
        assert_eq!(loaded.num_arcs(), graph.num_arcs());
        for v in graph.vertices() {
            assert_eq!(loaded.coord(v), graph.coord(v));
            assert!(loaded.neighbors(v).eq(graph.neighbors(v)));
        }
    }

    #[test]
    fn graph_round_trips_both_weight_kinds() {
        round_trip(EdgeWeightKind::Distance);
        round_trip(EdgeWeightKind::Time);
    }

    #[test]
    fn bad_kind_code_is_corrupt() {
        let graph =
            RoadNetwork::generate(&GeneratorConfig::new(50, 3)).graph(EdgeWeightKind::Distance);
        let mut w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        // Write meta with a bogus kind but otherwise valid sections.
        let mut meta = MetaWriter::new();
        meta.u64(9).usize(graph.num_vertices()).usize(graph.num_arcs());
        w.begin_section(TAG_META).unwrap();
        w.write_u64s(meta.words()).unwrap();
        w.end_section().unwrap();
        let (offsets, targets, weights) = graph.csr_parts();
        w.begin_section(TAG_OFFSETS).unwrap();
        w.write_u32s(offsets).unwrap();
        w.end_section().unwrap();
        w.begin_section(TAG_TARGETS).unwrap();
        w.write_u32s(targets).unwrap();
        w.end_section().unwrap();
        w.begin_section(TAG_WEIGHTS).unwrap();
        w.write_u64s(weights).unwrap();
        w.end_section().unwrap();
        w.begin_section(TAG_COORDS).unwrap();
        for p in graph.coords() {
            w.write_u64(p.x.to_bits()).unwrap();
            w.write_u64(p.y.to_bits()).unwrap();
        }
        w.end_section().unwrap();
        let data = w.finish().unwrap().into_inner();
        let err = load_graph(&Artifact::from_vec(data).unwrap()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }));
    }
}
