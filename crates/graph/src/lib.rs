//! Road-network graph substrate for the rnknn workspace.
//!
//! This crate provides the in-memory road-network representation shared by every
//! kNN method and shortest-path oracle in the workspace:
//!
//! * [`Graph`] — a compressed-sparse-row (CSR) undirected graph with vertex
//!   coordinates, following the "single edges array + offsets" layout the paper
//!   recommends for cache-friendly expansion (Section 6.2, choice 3).
//! * [`Point`] and Euclidean geometry helpers, including the travel-time lower
//!   bound scaling `S = max(d_i / w_i)` from Section 7.5.
//! * [`generator`] — a synthetic road-network generator used as a substitute for
//!   the 9th DIMACS Challenge datasets (see DESIGN.md §5).
//! * [`dimacs`] — a parser/writer for the DIMACS `.gr` / `.co` exchange format so
//!   real datasets can be plugged in when available.
//! * [`chains`] — degree-2 chain extraction used by the SILC/DisBrw degree-2
//!   optimisation (Appendix A.1.2).

#![forbid(unsafe_code)]

pub mod builder;
pub mod chains;
pub mod dimacs;
pub mod generator;
pub mod graph;
pub mod persist;
pub mod point;

pub use builder::GraphBuilder;
pub use chains::ChainIndex;
pub use generator::{DatasetPreset, GeneratorConfig, RoadNetwork};
pub use graph::{EdgeWeightKind, EuclideanBound, Graph};
pub use point::{Point, Rect};

/// Identifier of a road-network vertex. Vertices are numbered `0..graph.num_vertices()`.
pub type NodeId = u32;

/// Network distance / edge weight. Edge weights are positive; accumulated distances use
/// the same type to avoid conversions in hot loops.
pub type Weight = u64;

/// A value larger than any real network distance, safe to add edge weights to without
/// overflowing.
pub const INFINITY: Weight = Weight::MAX / 4;
