//! Planar points and Euclidean geometry.

/// A point in the plane. Road-network vertex coordinates are stored in an arbitrary
/// planar unit (the synthetic generator uses metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only comparisons are
    /// needed, e.g. inside R-tree traversal).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// An axis-aligned bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// An empty rectangle that expands to cover whatever is added to it.
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Rect { min_x: p.x, min_y: p.y, max_x: p.x, max_y: p.y }
    }

    /// Expands the rectangle to cover `p`.
    pub fn expand_point(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Expands the rectangle to cover `other`.
    pub fn expand_rect(&mut self, other: &Rect) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// True when the rectangle contains `p` (boundaries inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when the two rectangles overlap (boundaries inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Minimum Euclidean distance from `p` to any point of the rectangle (zero when the
    /// point lies inside).
    pub fn min_distance(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle.
    pub fn max_distance(&self, p: Point) -> f64 {
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Semi-perimeter, the usual R-tree enlargement metric.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Area of the rectangle (zero for degenerate rectangles).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_and_min_distance() {
        let mut r = Rect::empty();
        r.expand_point(Point::new(0.0, 0.0));
        r.expand_point(Point::new(10.0, 10.0));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(11.0, 5.0)));
        assert_eq!(r.min_distance(Point::new(5.0, 5.0)), 0.0);
        assert!((r.min_distance(Point::new(13.0, 14.0)) - 5.0).abs() < 1e-12);
        assert!((r.max_distance(Point::new(0.0, 0.0)) - (200.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_intersections() {
        let a = Rect { min_x: 0.0, min_y: 0.0, max_x: 5.0, max_y: 5.0 };
        let b = Rect { min_x: 4.0, min_y: 4.0, max_x: 9.0, max_y: 9.0 };
        let c = Rect { min_x: 6.0, min_y: 6.0, max_x: 9.0, max_y: 9.0 };
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!((a.area() - 25.0).abs() < 1e-12);
        assert!((a.margin() - 10.0).abs() < 1e-12);
    }
}
