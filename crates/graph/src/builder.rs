//! Incremental construction of [`crate::Graph`] instances from edge lists.

use crate::graph::Graph;
use crate::point::Point;
use crate::{NodeId, Weight};

/// Collects vertices and undirected edges and produces a CSR [`Graph`].
///
/// Duplicate edges between the same pair of vertices are kept only with their minimum
/// weight; self loops are dropped (neither occurs in road networks but both occur easily
/// in randomly generated test inputs).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with `n` vertices placed at the origin. Useful for tests that do
    /// not care about geometry.
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder { coords: vec![Point::default(); n], edges: Vec::new() }
    }

    /// Adds a vertex with the given coordinates and returns its id.
    pub fn add_vertex(&mut self, p: Point) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(p);
        id
    }

    /// Overrides the coordinates of an existing vertex.
    pub fn set_coord(&mut self, v: NodeId, p: Point) {
        self.coords[v as usize] = p;
    }

    /// Adds an undirected edge of weight `w` between `u` and `v`.
    ///
    /// Zero-weight edges are clamped to weight 1 so that Dijkstra invariants (strictly
    /// positive weights) hold throughout the workspace.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if u == v {
            return;
        }
        self.edges.push((u, v, w.max(1)));
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges added so far (before deduplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph.
    pub fn build(mut self) -> Graph {
        let n = self.coords.len();
        // Deduplicate parallel edges, keeping the smallest weight.
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup_by(|a, b| {
            if a.0 == b.0 && a.1 == b.1 {
                b.2 = b.2.min(a.2);
                true
            } else {
                false
            }
        });

        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let m = acc as usize;
        let mut targets = vec![0 as NodeId; m];
        let mut weights = vec![0 as Weight; m];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        Graph::from_csr(offsets, targets, weights, self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_csr_with_symmetric_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let d = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(a, c, 5);
        b.add_edge(c, d, 7);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(c), 2);
        let n: Vec<_> = g.neighbors(a).collect();
        assert_eq!(n, vec![(c, 5)]);
        let n: Vec<_> = g.neighbors(c).collect();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn deduplicates_parallel_edges_keeping_minimum() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 4)));
    }

    #[test]
    fn drops_self_loops_and_clamps_zero_weights() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(0, 0, 3);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 1)));
    }
}
