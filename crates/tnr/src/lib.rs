//! Transit Node Routing (Bast et al., WEA 2007), built on Contraction Hierarchies.
//!
//! TNR is one of the shortest-path oracles the paper plugs into IER (Section 5). This
//! implementation follows the CH-based construction used by the shortest-path
//! experimental study the paper takes its code from:
//!
//! * the transit node set `T` is the top fraction of vertices by CH rank;
//! * the *access nodes* of a vertex `v` are the transit nodes settled by an upward CH
//!   search from `v` that stops expanding at transit nodes, together with their upward
//!   distances;
//! * all transit-to-transit distances are stored in a full table;
//! * a query takes the minimum of (a) the table estimate through the access nodes of
//!   both endpoints, and (b) a *local* CH search that never expands transit nodes.
//!
//! The combination (a)/(b) is exact: if the highest-ranked vertex on the contracted
//! shortest path is a transit node the table estimate is exact, otherwise the whole
//! path survives in the transit-node-free local search. The grid locality filter of the
//! original paper is kept as an optional fast path that skips the table scan for nearby
//! pairs (matching the behaviour the paper observes: "CH is the technique used to answer
//! local queries in TNR").

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

use rnknn_ch::{ChConfig, ChSearchSpace, ContractionHierarchy};
use rnknn_graph::{Graph, NodeId, Weight, INFINITY};

/// Configuration for Transit Node Routing.
#[derive(Debug, Clone)]
pub struct TnrConfig {
    /// Number of transit nodes, expressed as a fraction of `|V|` (clamped to at least
    /// 16 vertices). The paper uses a 128×128 grid for selection; with CH-based
    /// selection the table size is controlled directly by this fraction.
    pub transit_fraction: f64,
    /// Side length of the locality-filter grid (`grid_cells × grid_cells`).
    pub grid_cells: usize,
    /// Pairs whose cells are within this Chebyshev distance are considered "local" and
    /// skip the access-node table scan.
    pub locality_radius: i32,
    /// Preprocessing knobs for the internally built contraction hierarchy (ignored by
    /// [`TransitNodeRouting::build_from_ch`], which receives a prebuilt one).
    pub ch_config: ChConfig,
}

impl Default for TnrConfig {
    fn default() -> Self {
        TnrConfig {
            transit_fraction: 0.01,
            grid_cells: 64,
            locality_radius: 3,
            ch_config: ChConfig::default(),
        }
    }
}

/// The Transit Node Routing index.
#[derive(Debug)]
pub struct TransitNodeRouting {
    ch: ContractionHierarchy,
    /// Transit node ids, indexed by their position in the distance table.
    transit_nodes: Vec<NodeId>,
    /// For every vertex: `(transit_table_index, upward_distance)` access node pairs.
    access_offsets: Vec<u32>,
    access_nodes: Vec<(u32, Weight)>,
    /// Full |T| × |T| distance table, row-major.
    table: Vec<Weight>,
    /// Grid cell of every vertex (for the locality filter).
    cell: Vec<(i32, i32)>,
    config: TnrConfig,
    /// How many queries were answered by the table vs the local search. Atomic so
    /// `distance` takes `&self` and the index can be queried from many threads.
    counters: TnrCounters,
}

impl Clone for TransitNodeRouting {
    fn clone(&self) -> Self {
        TransitNodeRouting {
            ch: self.ch.clone(),
            transit_nodes: self.transit_nodes.clone(),
            access_offsets: self.access_offsets.clone(),
            access_nodes: self.access_nodes.clone(),
            table: self.table.clone(),
            cell: self.cell.clone(),
            config: self.config.clone(),
            counters: TnrCounters {
                local_only: AtomicU64::new(self.counters.local_only.load(Ordering::Relaxed)),
                table_queries: AtomicU64::new(self.counters.table_queries.load(Ordering::Relaxed)),
            },
        }
    }
}

/// Query-counter snapshot (useful for reproducing the paper's analysis of when transit
/// nodes are actually used). Obtain one via [`TransitNodeRouting::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TnrStats {
    /// Queries where the locality filter skipped the table.
    pub local_only: u64,
    /// Queries that consulted the access-node table.
    pub table_queries: u64,
}

/// Live atomic counters behind [`TnrStats`].
#[derive(Debug, Default)]
struct TnrCounters {
    local_only: AtomicU64,
    table_queries: AtomicU64,
}

impl TransitNodeRouting {
    /// Builds the index with default parameters (building a CH internally).
    pub fn build(graph: &Graph) -> Self {
        Self::build_with_config(graph, TnrConfig::default())
    }

    /// Builds the index with explicit parameters.
    pub fn build_with_config(graph: &Graph, config: TnrConfig) -> Self {
        let ch = ContractionHierarchy::build_with_config(graph, &config.ch_config);
        Self::build_from_ch(graph, ch, config)
    }

    /// Builds the index reusing an existing contraction hierarchy.
    pub fn build_from_ch(graph: &Graph, ch: ContractionHierarchy, config: TnrConfig) -> Self {
        let n = graph.num_vertices();
        let num_transit =
            ((n as f64 * config.transit_fraction).ceil() as usize).clamp(16.min(n), n);
        // Transit nodes = highest-ranked vertices.
        let rank_threshold = (n - num_transit) as u32;
        let mut transit_nodes: Vec<NodeId> =
            graph.vertices().filter(|&v| ch.rank(v) >= rank_threshold).collect();
        transit_nodes.sort_unstable();
        let mut transit_index = vec![u32::MAX; n];
        for (i, &t) in transit_nodes.iter().enumerate() {
            transit_index[t as usize] = i as u32;
        }
        let is_transit = |v: NodeId| transit_index[v as usize] != u32::MAX;

        // Access nodes: upward search stopping at transit nodes.
        let mut access_offsets = vec![0u32; n + 1];
        let mut access_nodes: Vec<(u32, Weight)> = Vec::new();
        for v in 0..n as NodeId {
            let space = ch.upward_search_space_stopping_at(v, is_transit);
            for &(x, d) in space.entries() {
                if is_transit(x) {
                    access_nodes.push((transit_index[x as usize], d));
                }
            }
            access_offsets[v as usize + 1] = access_nodes.len() as u32;
        }

        // Transit-to-transit table via full CH queries between transit nodes. Forward
        // search spaces are reused per row.
        let t_count = transit_nodes.len();
        let mut table = vec![INFINITY; t_count * t_count];
        let spaces: Vec<_> = transit_nodes.iter().map(|&t| ch.upward_search_space(t)).collect();
        for i in 0..t_count {
            table[i * t_count + i] = 0;
            for j in (i + 1)..t_count {
                let d = spaces[i].meet(&spaces[j]);
                table[i * t_count + j] = d;
                table[j * t_count + i] = d;
            }
        }

        // Locality grid.
        let rect = graph.bounding_rect();
        let cells = config.grid_cells.max(1) as f64;
        let width = rect.width().max(1e-9);
        let height = rect.height().max(1e-9);
        let cell: Vec<(i32, i32)> = graph
            .coords()
            .iter()
            .map(|p| {
                let cx = (((p.x - rect.min_x) / width) * cells).floor().min(cells - 1.0) as i32;
                let cy = (((p.y - rect.min_y) / height) * cells).floor().min(cells - 1.0) as i32;
                (cx, cy)
            })
            .collect();

        TransitNodeRouting {
            ch,
            transit_nodes,
            access_offsets,
            access_nodes,
            table,
            cell,
            config,
            counters: TnrCounters::default(),
        }
    }

    /// Snapshot of the query counters accumulated so far.
    pub fn stats(&self) -> TnrStats {
        TnrStats {
            local_only: self.counters.local_only.load(Ordering::Relaxed),
            table_queries: self.counters.table_queries.load(Ordering::Relaxed),
        }
    }

    /// Number of transit nodes.
    pub fn num_transit_nodes(&self) -> usize {
        self.transit_nodes.len()
    }

    /// Average number of access nodes per vertex.
    pub fn average_access_nodes(&self) -> f64 {
        self.access_nodes.len() as f64 / (self.access_offsets.len() - 1).max(1) as f64
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ch.memory_bytes()
            + self.transit_nodes.len() * 4
            + self.access_nodes.len() * (4 + std::mem::size_of::<Weight>())
            + self.access_offsets.len() * 4
            + self.table.len() * std::mem::size_of::<Weight>()
            + self.cell.len() * 8
    }

    /// The underlying contraction hierarchy.
    pub fn ch(&self) -> &ContractionHierarchy {
        &self.ch
    }

    fn access(&self, v: NodeId) -> &[(u32, Weight)] {
        let lo = self.access_offsets[v as usize] as usize;
        let hi = self.access_offsets[v as usize + 1] as usize;
        &self.access_nodes[lo..hi]
    }

    /// True when the locality filter classifies the pair as local (table skipped).
    pub fn is_local(&self, s: NodeId, t: NodeId) -> bool {
        let (sx, sy) = self.cell[s as usize];
        let (tx, ty) = self.cell[t as usize];
        (sx - tx).abs().max((sy - ty).abs()) <= self.config.locality_radius
    }

    /// Exact network distance between `s` and `t`.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Weight {
        self.distance_with_counters(s, t).0
    }

    /// [`TransitNodeRouting::distance`] plus the CH search-effort counters of the
    /// underlying local searches (feeds the engine's unified `QueryStats`; the table
    /// lookups themselves are constant-time per access-node pair).
    pub fn distance_with_counters(
        &self,
        s: NodeId,
        t: NodeId,
    ) -> (Weight, rnknn_ch::ChSearchCounters) {
        let mut effort = rnknn_ch::ChSearchCounters::default();
        if s == t {
            return (0, effort);
        }
        // Local search: CH query that never expands transit nodes. Exact whenever the
        // contracted shortest path's peak is not a transit node.
        let is_transit = |v: NodeId| self.transit_nodes.binary_search(&v).is_ok();
        let (forward, fc) = self.ch.upward_search_space_stopping_at_with_counters(s, is_transit);
        let (backward, bc) = self.ch.upward_search_space_stopping_at_with_counters(t, is_transit);
        effort.accumulate(fc);
        effort.accumulate(bc);
        let local = forward.meet(&backward);

        if self.is_local(s, t) {
            self.counters.local_only.fetch_add(1, Ordering::Relaxed);
            // For local pairs the full CH query is used directly (the paper's "CH
            // answers local queries"); since the CH query is a pruned bidirectional
            // search it settles far fewer vertices than the two stopped spaces above.
            let (ch_distance, cc) = self.ch.distance_with_counters(s, t);
            effort.accumulate(cc);
            return (local.min(self.table_estimate(s, t)).min(ch_distance), effort);
        }
        self.counters.table_queries.fetch_add(1, Ordering::Relaxed);
        (local.min(self.table_estimate(s, t)), effort)
    }

    /// Prepares `state` for a sequence of distance queries from `s` (the IER-TNR hot
    /// path): materialises the source's stopped forward search space once, and folds
    /// the source side of the access-node table into a per-transit-node vector
    /// `through[b] = min_a (d(s, a) + table[a][b])`, so each candidate pays
    /// `O(|access(t)|)` for the table part instead of `O(|access(s)| · |access(t)|)`.
    /// All buffers inside `state` are reused across calls; returns the search-effort
    /// counters of the forward space materialisation.
    pub fn begin_source(
        &self,
        s: NodeId,
        state: &mut TnrSourceState,
    ) -> rnknn_ch::ChSearchCounters {
        let is_transit = |v: NodeId| self.transit_nodes.binary_search(&v).is_ok();
        let counters =
            self.ch.upward_search_space_stopping_at_into(s, is_transit, &mut state.space);
        let t_count = self.transit_nodes.len();
        state.through.clear();
        state.through.resize(t_count, INFINITY);
        for &(a, da) in self.access(s) {
            let row = &self.table[a as usize * t_count..(a as usize + 1) * t_count];
            for (b, &through) in row.iter().enumerate() {
                if through != INFINITY && da + through < state.through[b] {
                    state.through[b] = da + through;
                }
            }
        }
        state.source = Some(s);
        counters
    }

    /// Exact network distance from the source prepared by
    /// [`TransitNodeRouting::begin_source`] to `t`, reusing every buffer in `state`.
    /// Equivalent to [`TransitNodeRouting::distance_with_counters`] from that source
    /// (the same local-search / table-estimate minimum), but the forward side is paid
    /// once per source instead of once per candidate.
    pub fn distance_from_source_with_counters(
        &self,
        state: &mut TnrSourceState,
        t: NodeId,
    ) -> (Weight, rnknn_ch::ChSearchCounters) {
        let s = state.source.expect("begin_source must be called before distance_from_source");
        let mut effort = rnknn_ch::ChSearchCounters::default();
        if s == t {
            return (0, effort);
        }
        let is_transit = |v: NodeId| self.transit_nodes.binary_search(&v).is_ok();
        effort.accumulate(self.ch.upward_search_space_stopping_at_into(
            t,
            is_transit,
            &mut state.backward,
        ));
        let local = state.space.meet(&state.backward);
        let mut table = INFINITY;
        for &(b, db) in self.access(t) {
            let through = state.through[b as usize];
            if through != INFINITY && through + db < table {
                table = through + db;
            }
        }
        if self.is_local(s, t) {
            self.counters.local_only.fetch_add(1, Ordering::Relaxed);
            let (ch_distance, cc) = self.ch.distance_with_counters(s, t);
            effort.accumulate(cc);
            return (local.min(table).min(ch_distance), effort);
        }
        self.counters.table_queries.fetch_add(1, Ordering::Relaxed);
        (local.min(table), effort)
    }

    /// Distance estimate through the access-node table (exact for non-local pairs whose
    /// contracted shortest path peaks at a transit node; an upper bound otherwise).
    pub fn table_estimate(&self, s: NodeId, t: NodeId) -> Weight {
        let t_count = self.transit_nodes.len();
        let mut best = INFINITY;
        for &(a, da) in self.access(s) {
            for &(b, db) in self.access(t) {
                let through = self.table[a as usize * t_count + b as usize];
                if through != INFINITY {
                    let d = da + through + db;
                    if d < best {
                        best = d;
                    }
                }
            }
        }
        best
    }
}

/// Reusable per-source query state for [`TransitNodeRouting::begin_source`] /
/// [`TransitNodeRouting::distance_from_source_with_counters`]: the source's stopped
/// forward search space, the folded source side of the access-node table, and a
/// scratch buffer for the per-candidate backward searches. All buffers persist across
/// sources, so re-beginning from a new source allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct TnrSourceState {
    source: Option<NodeId>,
    space: ChSearchSpace,
    through: Vec<Weight>,
    backward: ChSearchSpace,
}

impl TnrSourceState {
    /// Creates an empty state (no allocation until the first `begin_source`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The source the state was last prepared for, if any.
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::EdgeWeightKind;
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn source_state_reuse_matches_pairwise_distances() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(800, 27));
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let g = net.graph(kind);
            let tnr = TransitNodeRouting::build(&g);
            let n = g.num_vertices() as NodeId;
            let mut state = TnrSourceState::new();
            for s in [3u32, n / 2, n - 5] {
                let counters = tnr.begin_source(s, &mut state);
                assert!(counters.settled > 0);
                assert_eq!(state.source(), Some(s));
                for t in (0..n).step_by(43) {
                    let (got, _) = tnr.distance_from_source_with_counters(&mut state, t);
                    assert_eq!(got, tnr.distance(s, t), "{s}->{t} {kind:?}");
                    assert_eq!(got, dijkstra::distance(&g, s, t), "{s}->{t} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn distances_match_dijkstra() {
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(900, 14));
            let g = net.graph(kind);
            let tnr = TransitNodeRouting::build_with_config(
                &g,
                TnrConfig {
                    transit_fraction: 0.02,
                    grid_cells: 16,
                    locality_radius: 2,
                    ..TnrConfig::default()
                },
            );
            let n = g.num_vertices() as NodeId;
            for i in 0..60u32 {
                let s = (i * 211) % n;
                let t = (i * 389 + 17) % n;
                assert_eq!(tnr.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t} {kind:?}");
            }
            let stats = tnr.stats();
            assert!(stats.local_only + stats.table_queries > 0);
        }
    }

    #[test]
    fn table_estimate_never_underestimates() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 3));
        let g = net.graph(EdgeWeightKind::Distance);
        let tnr = TransitNodeRouting::build(&g);
        let n = g.num_vertices() as NodeId;
        for i in 0..40u32 {
            let s = (i * 61) % n;
            let t = (i * 149 + 29) % n;
            let estimate = tnr.table_estimate(s, t);
            let truth = dijkstra::distance(&g, s, t);
            assert!(estimate >= truth, "estimate {estimate} < true {truth}");
        }
    }

    #[test]
    fn index_statistics_are_sensible() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 8));
        let g = net.graph(EdgeWeightKind::Distance);
        let tnr = TransitNodeRouting::build(&g);
        assert!(tnr.num_transit_nodes() >= 16);
        assert!(tnr.num_transit_nodes() < g.num_vertices());
        assert!(tnr.average_access_nodes() >= 1.0);
        assert!(tnr.memory_bytes() > tnr.ch().memory_bytes());
    }

    #[test]
    fn identical_endpoints_are_zero() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(200, 5));
        let g = net.graph(EdgeWeightKind::Distance);
        let tnr = TransitNodeRouting::build(&g);
        assert_eq!(tnr.distance(7, 7), 0);
    }
}
