//! Self-tests for the schedule explorer: it must find real races, detect
//! deadlocks, enforce mutual exclusion, and drive condvar handshakes to
//! completion.

use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;

use loom_shim as loom;

use loom::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::{model, thread};

/// The classic lost update: two threads each do a non-atomic read-modify-write.
/// A correct explorer must witness BOTH outcomes — 2 (serialized) and 1 (both
/// read 0 before either stored).
#[test]
fn explorer_observes_lost_update_race() {
    let outcomes: &'static StdMutex<BTreeSet<u32>> =
        Box::leak(Box::new(StdMutex::new(BTreeSet::new())));
    model(move || {
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        outcomes.lock().expect("outcomes").insert(counter.load(Ordering::SeqCst));
    });
    let seen = outcomes.lock().expect("outcomes").clone();
    assert_eq!(seen, BTreeSet::from([1, 2]), "explorer missed an interleaving");
}

/// The same race, but with the model asserting the serialized outcome: the
/// explorer must find the schedule that violates it.
#[test]
#[should_panic(expected = "lost update must be found")]
fn explorer_fails_model_that_assumes_atomicity() {
    model(|| {
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update must be found");
    });
}

/// Mutex-protected increments never lose updates, under every schedule.
#[test]
fn mutex_preserves_read_modify_write() {
    model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut guard = counter.lock().expect("counter");
                    *guard += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*counter.lock().expect("counter"), 2);
    });
}

/// AB/BA lock ordering: the explorer must drive both threads into the cycle
/// and report it as a deadlock rather than hanging.
#[test]
#[should_panic(expected = "deadlock")]
fn explorer_detects_lock_order_deadlock() {
    model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("a");
            let _gb = b2.lock().expect("b");
        });
        {
            let _gb = b.lock().expect("b");
            let _ga = a.lock().expect("a");
        }
        t.join().expect("worker");
    });
}

/// Condvar handshake: consumer waits for the flag, producer sets and notifies.
/// Every schedule must terminate with the flag observed (no lost wakeups).
#[test]
fn condvar_handshake_terminates() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let producer = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock().expect("flag") = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().expect("flag");
        while !*ready {
            ready = cv.wait(ready).expect("wait");
        }
        assert!(*ready);
        drop(ready);
        producer.join().expect("producer");
    });
}

/// A spin loop on an atomic flag (with `loom::thread::yield_now` in the body)
/// must make progress: yielding hands the schedule to the setter.
#[test]
fn yielding_spin_makes_progress() {
    model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let setter = thread::spawn(move || {
            flag2.store(true, Ordering::SeqCst);
        });
        let mut spins = 0u32;
        while !flag.load(Ordering::SeqCst) {
            thread::yield_now();
            spins += 1;
            assert!(spins < 1_000, "spin loop failed to make progress");
        }
        setter.join().expect("setter");
    });
}

/// `Arc::try_unwrap` succeeds exactly when the last clone has dropped — the
/// primitive the epoch-reclaim protocol leans on.
#[test]
fn arc_try_unwrap_tracks_last_owner() {
    model(|| {
        let value = Arc::new(7u32);
        let clone = Arc::clone(&value);
        let t = thread::spawn(move || drop(clone));
        t.join().expect("dropper");
        match Arc::try_unwrap(value) {
            Ok(v) => assert_eq!(v, 7),
            Err(_) => panic!("sole owner must reclaim"),
        }
    });
}

/// Failures inside spawned model threads propagate out of `model()`.
#[test]
#[should_panic(expected = "spawned thread assertion")]
fn spawned_thread_failure_propagates() {
    model(|| {
        let t = thread::spawn(|| {
            panic!("spawned thread assertion");
        });
        let _ = t.join();
    });
}

/// Outside `model()`, the shim types delegate to std and just work.
#[test]
fn delegates_to_std_outside_model() {
    let counter = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                *counter.lock().expect("counter") += 1;
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(*counter.lock().expect("counter"), 4);

    let flag = AtomicBool::new(false);
    flag.store(true, Ordering::Release);
    assert!(flag.load(Ordering::Acquire));
}
