//! The schedule explorer: run a closure under every (preemption-bounded)
//! interleaving of its instrumented operations.

use std::panic::resume_unwind;
use std::sync::{Arc as StdArc, Mutex as StdMutex, MutexGuard, OnceLock};

use crate::rt::{Choice, Scheduler};

/// Serializes model runs process-wide: one scheduler at a time, so `cargo test`
/// may run model tests on parallel test threads safely.
static MODEL_LOCK: OnceLock<StdMutex<()>> = OnceLock::new();

fn model_lock() -> MutexGuard<'static, ()> {
    MODEL_LOCK.get_or_init(|| StdMutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Explorer configuration, mirroring `loom::model::Builder`.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary preemptions per execution (`None` = unbounded).
    /// Voluntary switches — blocking, yielding, finishing — are always explored
    /// exhaustively. The default of 2 catches the overwhelming majority of
    /// schedule-dependent bugs at a fraction of the cost of full exploration.
    pub preemption_bound: Option<usize>,
    /// Hard cap on executions; exceeding it fails the model run rather than
    /// silently truncating coverage.
    pub max_executions: usize,
    /// Print a one-line exploration summary per model (also enabled by the
    /// `RNKNN_LOOM_LOG` environment variable).
    pub log: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_executions: 250_000,
            log: std::env::var_os("RNKNN_LOOM_LOG").is_some(),
        }
    }
}

impl Builder {
    /// A fresh default builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explores `f` under every scheduling of its instrumented operations within
    /// the preemption bound. Panics (re-raising the model's own panic, a
    /// deadlock report, or an exploration-budget overrun) if any execution fails.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = model_lock();
        crate::rt::install_abort_hook();
        let f = StdArc::new(f);
        let mut prefix: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                panic!(
                    "loom-shim: exceeded max_executions = {} (model too large for the \
                     configured exploration budget; simplify the model or raise the budget)",
                    self.max_executions
                );
            }
            let sched = Scheduler::new(std::mem::take(&mut prefix));
            let body = StdArc::clone(&f);
            sched.start(move || body());
            let result = sched.wait_done();
            if let Some(payload) = result.failure {
                eprintln!(
                    "loom-shim: model failed on execution {executions}; trailing schedule trace:"
                );
                for event in &result.events {
                    eprintln!("    {event}");
                }
                resume_unwind(payload);
            }
            prefix = result.schedule;
            if !advance(&mut prefix, self.preemption_bound) {
                break;
            }
        }
        if self.log {
            eprintln!("loom-shim: model passed ({executions} executions explored)");
        }
    }
}

/// Explores `f` with the default [`Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// Advances `schedule` to the next unexplored decision vector within the
/// preemption bound (depth-first: bump the deepest choice with an untried
/// alternative, truncate everything after it). Returns `false` when the space is
/// exhausted.
fn advance(schedule: &mut Vec<Choice>, preemption_bound: Option<usize>) -> bool {
    // Preemptions spent *before* each choice, so a bumped alternative can be
    // checked against the bound.
    let mut spent_before = Vec::with_capacity(schedule.len());
    let mut spent = 0usize;
    for choice in schedule.iter() {
        spent_before.push(spent);
        spent += choice.cost();
    }
    for i in (0..schedule.len()).rev() {
        let choice = &mut schedule[i];
        if choice.index + 1 < choice.candidates.len() {
            let next_cost = usize::from(!choice.forced);
            if preemption_bound.is_none_or(|bound| spent_before[i] + next_cost <= bound) {
                choice.index += 1;
                schedule.truncate(i + 1);
                return true;
            }
        }
    }
    false
}
