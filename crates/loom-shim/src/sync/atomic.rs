//! Instrumented atomics. Under a model every access is a scheduling point and
//! executes sequentially consistent (the shim explores SC interleavings only —
//! see the crate docs); outside a model the requested ordering is used as-is.

pub use std::sync::atomic::Ordering;

use crate::rt;

macro_rules! atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with `value`.
            pub const fn new(value: $prim) -> $name {
                $name { inner: std::sync::atomic::$std::new(value) }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.load"));
                    self.inner.load(Ordering::SeqCst)
                } else {
                    self.inner.load(order)
                }
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, order: Ordering) {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.store"));
                    self.inner.store(value, Ordering::SeqCst)
                } else {
                    self.inner.store(value, order)
                }
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.swap"));
                    self.inner.swap(value, Ordering::SeqCst)
                } else {
                    self.inner.swap(value, order)
                }
            }

            /// Atomic compare-exchange.
            #[allow(clippy::result_unit_err)]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.compare_exchange"));
                    self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                } else {
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        }
    };
}

macro_rules! atomic_numeric {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Atomic fetch-add, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.fetch_add"));
                    self.inner.fetch_add(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_add(value, order)
                }
            }

            /// Atomic saturating-free fetch-sub, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                if rt::in_model() {
                    rt::point(rt::PointKind::Op("atomic.fetch_sub"));
                    self.inner.fetch_sub(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_sub(value, order)
                }
            }
        }
    };
}

atomic!(
    /// Instrumented `AtomicBool`.
    AtomicBool,
    AtomicBool,
    bool
);
atomic!(
    /// Instrumented `AtomicU32`.
    AtomicU32,
    AtomicU32,
    u32
);
atomic!(
    /// Instrumented `AtomicU64`.
    AtomicU64,
    AtomicU64,
    u64
);
atomic!(
    /// Instrumented `AtomicUsize`.
    AtomicUsize,
    AtomicUsize,
    usize
);

atomic_numeric!(AtomicU32, u32);
atomic_numeric!(AtomicU64, u64);
atomic_numeric!(AtomicUsize, usize);
