//! Instrumented replacements for `std::thread` spawning, joining and yielding.

use std::fmt;
use std::sync::{Arc as StdArc, Mutex as StdMutex};

use crate::rt;

/// Spawns a thread. Inside a model the thread is registered with the explorer
/// and serialized with every other model thread; outside one this is
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("loom-shim: failed to spawn thread")
}

/// Cooperatively yields: a scheduling point that prefers switching away (in a
/// model), or `std::thread::yield_now` (outside one).
pub fn yield_now() {
    if rt::in_model() {
        rt::point(rt::PointKind::Yield);
    } else {
        std::thread::yield_now();
    }
}

/// Thread factory mirroring `std::thread::Builder` (name support only).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A fresh builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names the thread-to-be.
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread (see [`spawn`]).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some(sched) = rt::current_scheduler() {
            let slot = StdArc::new(StdMutex::new(None));
            let tid = sched.spawn_thread(self.name, StdArc::clone(&slot), f);
            Ok(JoinHandle { imp: HandleImp::Model { tid, slot } })
        } else {
            let mut builder = std::thread::Builder::new();
            if let Some(name) = self.name {
                builder = builder.name(name);
            }
            builder.spawn(f).map(|handle| JoinHandle { imp: HandleImp::Std(handle) })
        }
    }
}

enum HandleImp<T> {
    Std(std::thread::JoinHandle<T>),
    Model { tid: usize, slot: StdArc<StdMutex<Option<T>>> },
}

/// Handle to a spawned thread; [`JoinHandle::join`] blocks until it finishes.
pub struct JoinHandle<T> {
    imp: HandleImp<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value (`Err` if the
    /// thread panicked — under a model the whole execution has failed by then).
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            HandleImp::Std(handle) => handle.join(),
            HandleImp::Model { tid, slot } => {
                rt::join_thread(tid);
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(value) => Ok(value),
                    None => Err(Box::new("loom-shim: model thread panicked")),
                }
            }
        }
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.imp {
            HandleImp::Std(handle) => f.debug_tuple("JoinHandle").field(handle).finish(),
            HandleImp::Model { tid, .. } => f.debug_tuple("JoinHandle").field(tid).finish(),
        }
    }
}
