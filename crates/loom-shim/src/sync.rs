//! Instrumented drop-in replacements for `std::sync` types.
//!
//! Each type wraps its `std` counterpart. Inside an active [`fn@crate::model`]
//! execution every operation is a scheduling point routed through the explorer;
//! outside one everything delegates directly to `std`, so shimmed code behaves
//! identically in production builds.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::LockResult;
use std::time::Duration;

use crate::rt;

pub mod atomic;

/// Instrumented `Arc`: clone, drop and [`Arc::try_unwrap`] are scheduling
/// points, which is what lets models explore reader-pin vs. buffer-reclaim
/// races.
pub struct Arc<T: ?Sized> {
    inner: Option<std::sync::Arc<T>>,
}

impl<T> Arc<T> {
    /// Wraps `value` in a new reference-counted allocation.
    pub fn new(value: T) -> Arc<T> {
        Arc { inner: Some(std::sync::Arc::new(value)) }
    }

    /// Returns the inner value iff this is the sole strong reference, exactly
    /// like `std::sync::Arc::try_unwrap` (a scheduling point under a model).
    pub fn try_unwrap(mut this: Arc<T>) -> Result<T, Arc<T>> {
        rt::point(rt::PointKind::Op("arc.try_unwrap"));
        let inner = this.inner.take().expect("loom-shim: Arc inner absent");
        std::sync::Arc::try_unwrap(inner).map_err(|shared| Arc { inner: Some(shared) })
    }
}

impl<T: ?Sized> Arc<T> {
    /// The number of strong references (diagnostic parity with `std`).
    pub fn strong_count(this: &Arc<T>) -> usize {
        std::sync::Arc::strong_count(this.arc())
    }

    /// Pointer equality of two `Arc`s.
    pub fn ptr_eq(this: &Arc<T>, other: &Arc<T>) -> bool {
        std::sync::Arc::ptr_eq(this.arc(), other.arc())
    }

    fn arc(&self) -> &std::sync::Arc<T> {
        self.inner.as_ref().expect("loom-shim: Arc inner absent")
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Arc<T> {
        rt::point(rt::PointKind::Op("arc.clone"));
        Arc { inner: Some(std::sync::Arc::clone(self.arc())) }
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            rt::point(rt::PointKind::Op("arc.drop"));
        }
    }
}

impl<T: ?Sized> Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.arc()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.arc(), f)
    }
}

/// Instrumented `Mutex`. Lock acquisition is a scheduling point; logical
/// ownership is tracked by the explorer (the inner `std` mutex is then always
/// uncontended because model threads are serialized).
pub struct Mutex<T: ?Sized> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { id: rt::next_resource_id(), inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. Under a model this never reports poisoning (a
    /// poisoned execution has already failed); outside one, `std` semantics.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::in_model() {
            rt::mutex_acquire(self.id);
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard { lock: self, inner: Some(inner) })
        } else {
            match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard { lock: self, inner: Some(inner) }),
                Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                })),
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Guard for [`Mutex`]; releases logical and real ownership on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> MutexGuard<'_, T> {
    fn guard(&self) -> &std::sync::MutexGuard<'_, T> {
        self.inner.as_ref().expect("loom-shim: mutex guard already released")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("loom-shim: mutex guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            rt::mutex_release(self.lock.id);
        }
    }
}

/// Instrumented `RwLock`; read and write acquisitions are scheduling points.
pub struct RwLock<T: ?Sized> {
    id: usize,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { id: rt::next_resource_id(), inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if rt::in_model() {
            rt::rwlock_acquire_read(self.id);
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockReadGuard { lock: self, inner: Some(inner) })
        } else {
            match self.inner.read() {
                Ok(inner) => Ok(RwLockReadGuard { lock: self, inner: Some(inner) }),
                Err(poisoned) => Err(std::sync::PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                })),
            }
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if rt::in_model() {
            rt::rwlock_acquire_write(self.id);
            let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockWriteGuard { lock: self, inner: Some(inner) })
        } else {
            match self.inner.write() {
                Ok(inner) => Ok(RwLockWriteGuard { lock: self, inner: Some(inner) }),
                Err(poisoned) => Err(std::sync::PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                })),
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("loom-shim: rwlock guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            rt::rwlock_release_read(self.lock.id);
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("loom-shim: rwlock guard already released")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("loom-shim: rwlock guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            rt::rwlock_release_write(self.lock.id);
        }
    }
}

/// Result of a timed condvar wait ([`Condvar::wait_timeout`]); our own type
/// because `std`'s cannot be constructed by the model path.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented `Condvar`. Waits and notifies are scheduling points; under a
/// model there are no spurious wakeups and no real timeouts (a timed wait
/// degrades to a plain wait, which model code must tolerate — the channel
/// implementations in `rnknn-serve` re-check their predicates in a loop).
pub struct Condvar {
    id: usize,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar { id: rt::next_resource_id(), inner: std::sync::Condvar::new() }
    }

    /// Releases `guard`'s mutex, waits for a notification, and re-acquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if rt::in_model() {
            let mutex = guard.lock;
            // Register as a waiter *before* releasing the mutex so a notify
            // arriving in between cannot be lost.
            rt::condvar_enqueue(self.id);
            let inner = guard.inner.take().expect("loom-shim: mutex guard already released");
            drop(inner);
            rt::mutex_release(mutex.id);
            drop(guard);
            rt::park_blocked();
            mutex.lock()
        } else {
            let mutex = guard.lock;
            let inner = guard.inner.take().expect("loom-shim: mutex guard already released");
            drop(guard);
            match self.inner.wait(inner) {
                Ok(inner) => Ok(MutexGuard { lock: mutex, inner: Some(inner) }),
                Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                    lock: mutex,
                    inner: Some(poisoned.into_inner()),
                })),
            }
        }
    }

    /// [`Condvar::wait`] with a timeout. Under a model the timeout is ignored
    /// (never reported as elapsed); outside one, `std` semantics.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if rt::in_model() {
            match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult { timed_out: false })),
                Err(poisoned) => Err(std::sync::PoisonError::new((
                    poisoned.into_inner(),
                    WaitTimeoutResult { timed_out: false },
                ))),
            }
        } else {
            let mutex = guard.lock;
            let inner = guard.inner.take().expect("loom-shim: mutex guard already released");
            drop(guard);
            match self.inner.wait_timeout(inner, timeout) {
                Ok((inner, timed)) => Ok((
                    MutexGuard { lock: mutex, inner: Some(inner) },
                    WaitTimeoutResult { timed_out: timed.timed_out() },
                )),
                Err(poisoned) => {
                    let (inner, timed) = poisoned.into_inner();
                    Err(std::sync::PoisonError::new((
                        MutexGuard { lock: mutex, inner: Some(inner) },
                        WaitTimeoutResult { timed_out: timed.timed_out() },
                    )))
                }
            }
        }
    }

    /// Wakes one waiter (the explorer branches over which, when several wait).
    pub fn notify_one(&self) {
        if rt::in_model() {
            rt::condvar_notify_one(self.id);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if rt::in_model() {
            rt::condvar_notify_all(self.id);
        } else {
            self.inner.notify_all();
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}
