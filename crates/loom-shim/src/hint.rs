//! Spin-loop hints (instrumented as yields under a model).

/// In a model, a scheduling point that prefers switching away (a spinning
/// thread must let the thread it waits on run); otherwise `std::hint::spin_loop`.
pub fn spin_loop() {
    if crate::rt::in_model() {
        crate::rt::point(crate::rt::PointKind::Yield);
    } else {
        std::hint::spin_loop();
    }
}
