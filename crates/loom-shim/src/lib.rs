//! A minimal, dependency-free stand-in for the [`loom`] concurrency model checker.
//!
//! The workspace builds in environments without network access, so the real
//! crates.io `loom` cannot be fetched. This shim implements the API surface the
//! serving-layer models use — [`fn@model`], [`model::Builder`], [`sync::Arc`],
//! [`sync::Mutex`], [`sync::RwLock`], [`sync::Condvar`], [`sync::atomic`] and
//! [`thread`] — backed by a deterministic *serialized-thread* explorer:
//!
//! * Model threads run as real OS threads, but a scheduler token serializes them
//!   so exactly one runs at a time. Every instrumented operation (lock, unlock,
//!   atomic access, `Arc` clone/drop/`try_unwrap`, condvar wait/notify, spawn,
//!   join, yield) is a *scheduling point* where the explorer may switch threads.
//! * [`fn@model`] re-runs the closure under depth-first search over those
//!   scheduling decisions, bounded by
//!   [`preemption_bound`](model::Builder::preemption_bound) involuntary
//!   preemptions per execution (voluntary switches — blocking, yielding,
//!   finishing — are always explored exhaustively). Research on systematic
//!   concurrency testing shows a small preemption bound catches the vast
//!   majority of schedule-dependent bugs.
//! * Failed executions (assertion panics, detected deadlocks) abort the search
//!   and re-raise on the caller with the execution count and a trailing trace of
//!   scheduling events, so the failing schedule can be reasoned about.
//!
//! ## Fidelity limits (vs. the real `loom`)
//!
//! * Interleavings are explored under **sequential consistency** only: relaxed /
//!   acquire-release outcomes that require weak-memory reordering are not
//!   generated. The models in this workspace guard logical protocol invariants
//!   (epoch lifecycle, replay bookkeeping, handshakes), which SC exploration
//!   covers; they do not attempt to validate memory-ordering choices.
//! * Condition variables never wake spuriously.
//! * Only operations that go through this crate's types are visible to the
//!   explorer. Code under test must route all cross-thread communication through
//!   them (the `rnknn-serve` `sync` shim does exactly that).
//!
//! Outside an active [`fn@model`] run every type delegates straight to its `std`
//! counterpart, so code threaded through the shim behaves identically (and costs
//! one branch) in production builds and non-model tests.
//!
//! [`loom`]: https://docs.rs/loom

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hint;
pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::model;
