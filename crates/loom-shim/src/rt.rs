//! The serialized-thread scheduler and depth-first schedule explorer.
//!
//! One [`Scheduler`] drives one *execution* of a model closure: it registers
//! every model thread, hands a run token to exactly one of them at a time, and
//! records each branching scheduling decision as a [`Choice`]. The explorer in
//! [`fn@crate::model`] replays a decision prefix and backtracks over it between
//! executions.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Allocates process-unique ids for shim mutexes/rwlocks/condvars. Ids only need
/// to be unique within one execution; a monotone global counter gives that
/// without any reset bookkeeping.
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(0);

/// Draws a fresh resource id (called by `sync` type constructors).
pub(crate) fn next_resource_id() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The scheduler context of the current OS thread, set iff this thread is a
    /// registered thread of an active model execution.
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    sched: StdArc<Scheduler>,
    tid: usize,
}

/// Zero-sized panic payload used to quietly unwind sibling threads after a model
/// failure or deadlock has already been recorded. The thread wrapper swallows it.
pub(crate) struct SilentAbort;

/// True when the calling OS thread belongs to an active model execution.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn current_ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The scheduler of the active model execution on this thread, if any.
pub(crate) fn current_scheduler() -> Option<StdArc<Scheduler>> {
    current_ctx().map(|c| c.sched)
}

/// What a thread is waiting for while blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// A shim mutex (by id).
    Mutex(usize),
    /// Read access to a shim rwlock (by id).
    RwRead(usize),
    /// Write access to a shim rwlock (by id).
    RwWrite(usize),
    /// A shim condvar notification (by id).
    Condvar(usize),
    /// Another model thread finishing (by tid).
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One thread's scheduler-side state: run status plus its wake token.
struct Th {
    run: Run,
    token: StdArc<Token>,
}

/// A park/wake token: each model thread waits on its own.
struct Token {
    flag: StdMutex<bool>,
    cv: StdCondvar,
}

impl Token {
    fn new() -> StdArc<Token> {
        StdArc::new(Token { flag: StdMutex::new(false), cv: StdCondvar::new() })
    }

    fn wait(&self) {
        let mut g = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g = false;
    }

    fn grant(&self) {
        *self.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }
}

/// One recorded branching decision: the candidate thread ids at a scheduling
/// point (deterministically ordered) and which index was taken. `forced` marks
/// decisions where the running thread could not simply continue (block, finish,
/// yield, notify target selection) — those alternatives cost no preemption.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub(crate) candidates: Vec<usize>,
    pub(crate) index: usize,
    pub(crate) forced: bool,
}

impl Choice {
    /// The preemption cost of this decision as currently taken: switching away
    /// from a thread that could have continued costs one preemption.
    pub(crate) fn cost(&self) -> usize {
        usize::from(!self.forced && self.index != 0)
    }
}

struct RwSt {
    writer: Option<usize>,
    readers: usize,
}

struct St {
    threads: Vec<Th>,
    current: usize,
    finished: usize,
    /// Replayed prefix plus decisions appended by this execution.
    schedule: Vec<Choice>,
    /// Next position in `schedule` to replay; past the end means we are
    /// recording fresh decisions.
    cursor: usize,
    /// First real failure (assertion panic payload or deadlock report).
    failure: Option<Box<dyn Any + Send + 'static>>,
    aborting: bool,
    mutexes: HashMap<usize, Option<usize>>,
    rwlocks: HashMap<usize, RwSt>,
    /// Trailing scheduling-event trace (bounded), printed on failure.
    events: Vec<String>,
}

const EVENT_TRACE_CAP: usize = 64;

impl St {
    fn push_event(&mut self, tid: usize, what: &str) {
        if self.events.len() == EVENT_TRACE_CAP {
            self.events.remove(0);
        }
        self.events.push(format!("t{tid} {what}"));
    }

    fn runnable_others(&self, tid: usize) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| t != tid && self.threads[t].run == Run::Runnable)
            .collect()
    }

    /// Replays or records the decision among `candidates`, returning the chosen
    /// tid. Single-candidate points are deterministic and not recorded.
    fn pick(&mut self, candidates: Vec<usize>, forced: bool) -> usize {
        debug_assert!(!candidates.is_empty());
        if candidates.len() == 1 {
            return candidates[0];
        }
        if self.cursor < self.schedule.len() {
            let choice = &self.schedule[self.cursor];
            assert_eq!(
                choice.candidates, candidates,
                "loom-shim: nondeterministic model (replayed candidate set diverged; \
                 model closures must be deterministic given the schedule)"
            );
            self.cursor += 1;
            choice.candidates[choice.index]
        } else {
            let chosen = candidates[0];
            self.schedule.push(Choice { candidates, index: 0, forced });
            self.cursor += 1;
            chosen
        }
    }

    fn wake_blocked_on(&mut self, resource: Resource) {
        for th in &mut self.threads {
            if th.run == Run::Blocked(resource) {
                th.run = Run::Runnable;
            }
        }
    }

    fn describe_threads(&self) -> String {
        let mut out = String::new();
        for (tid, th) in self.threads.iter().enumerate() {
            out.push_str(&format!("  t{tid}: {:?}\n", th.run));
        }
        out
    }
}

/// The per-execution scheduler (see the module docs).
pub(crate) struct Scheduler {
    st: StdMutex<St>,
    done: StdCondvar,
}

/// What finished execution produced: the full decision list, the failure (if
/// any) and the trailing event trace.
pub(crate) struct ExecutionResult {
    pub(crate) schedule: Vec<Choice>,
    pub(crate) failure: Option<Box<dyn Any + Send + 'static>>,
    pub(crate) events: Vec<String>,
}

impl Scheduler {
    pub(crate) fn new(prefix: Vec<Choice>) -> StdArc<Scheduler> {
        StdArc::new(Scheduler {
            st: StdMutex::new(St {
                threads: Vec::new(),
                current: 0,
                finished: 0,
                schedule: prefix,
                cursor: 0,
                failure: None,
                aborting: false,
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                events: Vec::new(),
            }),
            done: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, St> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread (runnable, not yet granted) and returns its tid.
    fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Th { run: Run::Runnable, token: Token::new() });
        st.threads.len() - 1
    }

    /// Spawns the root thread (tid 0) running `f` and returns once registered.
    pub(crate) fn start<F>(self: &StdArc<Self>, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.register();
        debug_assert_eq!(tid, 0);
        {
            let mut st = self.lock();
            st.current = 0;
            st.threads[0].token.grant();
        }
        let sched = StdArc::clone(self);
        std::thread::Builder::new()
            .name("loom-shim-0".into())
            .spawn(move || thread_main(sched, 0, f, None::<StdArc<StdMutex<Option<()>>>>))
            .expect("loom-shim: failed to spawn model thread");
    }

    /// Spawns an additional model thread; `slot` receives the closure's value for
    /// `join`. Returns the new tid. Called from a running model thread.
    pub(crate) fn spawn_thread<T, F>(
        self: &StdArc<Self>,
        name: Option<String>,
        slot: StdArc<StdMutex<Option<T>>>,
        f: F,
    ) -> usize
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let tid = self.register();
        let sched = StdArc::clone(self);
        std::thread::Builder::new()
            .name(name.unwrap_or_else(|| format!("loom-shim-{tid}")))
            .spawn(move || thread_main(sched, tid, f, Some(slot)))
            .expect("loom-shim: failed to spawn model thread");
        // Expose the new thread to the explorer right away.
        point(PointKind::Op("spawn"));
        tid
    }

    /// Blocks the runner until every registered thread has finished, then
    /// returns the execution's outcome.
    pub(crate) fn wait_done(&self) -> ExecutionResult {
        let mut st = self.lock();
        while st.finished == 0 || st.finished < st.threads.len() {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        ExecutionResult {
            schedule: std::mem::take(&mut st.schedule),
            failure: st.failure.take(),
            events: std::mem::take(&mut st.events),
        }
    }

    /// Records the first real failure, then aborts the execution: every
    /// unfinished thread is granted its token so it can observe `aborting` and
    /// unwind quietly.
    fn record_failure(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(payload);
        }
        abort_locked(&mut st);
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].run = Run::Finished;
        st.finished += 1;
        st.push_event(tid, "finish");
        st.wake_blocked_on(Resource::Join(tid));
        if st.finished == st.threads.len() {
            drop(st);
            self.done.notify_all();
            return;
        }
        if st.aborting {
            return;
        }
        // Hand the token to a successor; with unfinished threads and nobody
        // runnable the execution is deadlocked.
        let candidates = st.runnable_others(tid);
        if candidates.is_empty() {
            deadlock_locked(&mut st, tid);
            return;
        }
        let chosen = st.pick(candidates, true);
        grant_locked(&mut st, chosen);
    }
}

/// Installs (once, process-wide) a panic hook that accelerates model aborts.
///
/// The moment any model thread panics — *before* its unwinding runs destructors
/// — the execution is marked aborting and every unfinished sibling is granted
/// its token. A sibling parked inside a critical section still holds a real
/// `std` guard; waking it now lets it observe the abort, unwind and release
/// that guard. The failing thread's own destructors degrade to bare `std`
/// locking while panicking (the entry-point guards), so with every holder
/// already unwinding those locks are release-bound and cleanup cannot wedge on
/// a thread that would otherwise only be rescheduled after this unwind
/// completed. [`SilentAbort`] payloads are suppressed from the default report;
/// everything else — including panics outside any model — is forwarded to the
/// previously installed hook.
pub(crate) fn install_abort_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let silent = info.payload().is::<SilentAbort>();
            if let Some(sched) = current_scheduler() {
                abort_locked(&mut sched.lock());
            }
            if !silent {
                prev(info);
            }
        }));
    });
}

/// Marks the execution aborting and wakes every unfinished thread.
fn abort_locked(st: &mut St) {
    st.aborting = true;
    for th in &st.threads {
        if th.run != Run::Finished {
            th.token.grant();
        }
    }
}

/// Records a deadlock as the execution failure and aborts.
fn deadlock_locked(st: &mut St, tid: usize) {
    let msg = format!(
        "loom-shim: deadlock detected (every unfinished thread is blocked; t{tid} was last to stop)\n{}",
        st.describe_threads()
    );
    if st.failure.is_none() {
        st.failure = Some(Box::new(msg));
    }
    abort_locked(st);
}

fn grant_locked(st: &mut St, tid: usize) {
    st.current = tid;
    st.threads[tid].token.grant();
}

fn thread_main<T, F>(
    sched: StdArc<Scheduler>,
    tid: usize,
    f: F,
    slot: Option<StdArc<StdMutex<Option<T>>>>,
) where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    CURRENT.with(|c| *c.borrow_mut() = Some(Ctx { sched: StdArc::clone(&sched), tid }));
    let token = StdArc::clone(&sched.lock().threads[tid].token);
    token.wait();
    let aborting = sched.lock().aborting;
    if !aborting {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(value) => {
                if let Some(slot) = &slot {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                }
            }
            Err(payload) => {
                if !payload.is::<SilentAbort>() {
                    sched.record_failure(payload);
                }
            }
        }
    }
    sched.finish_thread(tid);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// The flavour of a scheduling point.
#[derive(Clone, Copy)]
pub(crate) enum PointKind {
    /// An instrumented operation about to execute; continuing the current thread
    /// is the default, switching costs a preemption.
    Op(&'static str),
    /// A `yield_now`: the current thread asks to be descheduled. When another
    /// runnable thread exists the switch is mandatory (the explorer only
    /// branches over *which* thread runs next) — keeping "stay put" as an
    /// alternative would make the explorer enumerate livelock schedules in
    /// which a yielding spin loop starves the thread it waits on forever.
    Yield,
}

/// The central scheduling point: possibly switches to another runnable thread
/// before the caller performs its instrumented operation.
pub(crate) fn point(kind: PointKind) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    let sched = ctx.sched;
    let tid = ctx.tid;
    {
        let mut st = sched.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(SilentAbort);
        }
        let (label, forced) = match kind {
            PointKind::Op(op) => (op, false),
            PointKind::Yield => ("yield", true),
        };
        st.push_event(tid, label);
        let others = st.runnable_others(tid);
        if others.is_empty() {
            return;
        }
        let candidates = match kind {
            PointKind::Op(_) => {
                let mut c = Vec::with_capacity(others.len() + 1);
                c.push(tid);
                c.extend(others);
                c
            }
            // Mandatory deschedule: branch only over which other thread runs.
            PointKind::Yield => others,
        };
        let chosen = st.pick(candidates, forced);
        if chosen == tid {
            return;
        }
        grant_locked(&mut st, chosen);
    }
    wait_for_turn(&sched, tid);
}

/// Parks the calling thread until it is granted the run token again, then
/// re-checks for an abort.
fn wait_for_turn(sched: &StdArc<Scheduler>, tid: usize) {
    let token = StdArc::clone(&sched.lock().threads[tid].token);
    token.wait();
    // Never turn an in-progress unwind into a double panic (the guarded entry
    // points make this unreachable while panicking, but keep it airtight).
    if sched.lock().aborting && !std::thread::panicking() {
        std::panic::panic_any(SilentAbort);
    }
}

/// Marks the current thread blocked on `resource`, hands the token to another
/// runnable thread (deadlock if none) and parks until woken *and* rescheduled.
pub(crate) fn block_on(resource: Resource, label: &'static str) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    mark_blocked(&ctx, resource, label);
    park_blocked_ctx(&ctx);
}

fn mark_blocked(ctx: &Ctx, resource: Resource, label: &'static str) {
    let mut st = ctx.sched.lock();
    if st.aborting {
        drop(st);
        std::panic::panic_any(SilentAbort);
    }
    st.push_event(ctx.tid, label);
    st.threads[ctx.tid].run = Run::Blocked(resource);
}

/// The parking half of [`block_on`], for callers that already marked themselves
/// blocked (the condvar wait path, which must release its mutex in between).
pub(crate) fn park_blocked() {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    park_blocked_ctx(&ctx);
}

fn park_blocked_ctx(ctx: &Ctx) {
    {
        let mut st = ctx.sched.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(SilentAbort);
        }
        // If something already woke us between marking and parking (possible on
        // the condvar path where the mutex release runs in between), we are
        // Runnable again but still must wait to be scheduled.
        let candidates = st.runnable_others(ctx.tid);
        if candidates.is_empty() {
            if st.threads[ctx.tid].run == Run::Runnable {
                // Everyone else is blocked or finished but we can continue.
                return;
            }
            deadlock_locked(&mut st, ctx.tid);
            drop(st);
            std::panic::panic_any(SilentAbort);
        }
        let chosen = st.pick(candidates, true);
        grant_locked(&mut st, chosen);
    }
    wait_for_turn(&ctx.sched, ctx.tid);
}

/// Registers the calling thread as a waiter of condvar `cv` (blocked state set
/// immediately so a wake between the mutex release and the park is not lost).
pub(crate) fn condvar_enqueue(cv: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    mark_blocked(&ctx, Resource::Condvar(cv), "cv.wait");
}

/// Wakes one waiter of condvar `cv` (branching over the choice when several wait).
pub(crate) fn condvar_notify_one(cv: usize) {
    let Some(ctx) = current_ctx() else { return };
    if std::thread::panicking() {
        return;
    }
    point(PointKind::Op("cv.notify_one"));
    let mut st = ctx.sched.lock();
    let waiters: Vec<usize> = (0..st.threads.len())
        .filter(|&t| st.threads[t].run == Run::Blocked(Resource::Condvar(cv)))
        .collect();
    if waiters.is_empty() {
        return;
    }
    let chosen = st.pick(waiters, true);
    st.threads[chosen].run = Run::Runnable;
}

/// Wakes every waiter of condvar `cv`.
pub(crate) fn condvar_notify_all(cv: usize) {
    let Some(ctx) = current_ctx() else { return };
    if std::thread::panicking() {
        return;
    }
    point(PointKind::Op("cv.notify_all"));
    ctx.sched.lock().wake_blocked_on(Resource::Condvar(cv));
}

/// Acquires shim mutex `id` for the calling model thread (scheduling point +
/// block-retry loop).
pub(crate) fn mutex_acquire(id: usize) {
    if std::thread::panicking() {
        // A destructor running during unwinding (channel endpoints, guards) may
        // re-enter the scheduler; degrade to the caller's bare `std` locking —
        // the execution is already being abandoned and `install_abort_hook` has
        // woken every parked guard holder, so that lock is release-bound.
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    point(PointKind::Op("lock"));
    loop {
        {
            let mut st = ctx.sched.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(SilentAbort);
            }
            let holder = st.mutexes.entry(id).or_insert(None);
            match holder {
                None => {
                    *holder = Some(ctx.tid);
                    return;
                }
                Some(h) if *h == ctx.tid => {
                    drop(st);
                    ctx.sched.record_failure(Box::new(format!(
                        "loom-shim: recursive lock of mutex #{id} by t{}",
                        ctx.tid
                    )));
                    std::panic::panic_any(SilentAbort);
                }
                Some(_) => {}
            }
        }
        block_on(Resource::Mutex(id), "lock-wait");
    }
}

/// Releases shim mutex `id`, waking its waiters (not itself a scheduling point).
pub(crate) fn mutex_release(id: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    let mut st = ctx.sched.lock();
    st.push_event(ctx.tid, "unlock");
    st.mutexes.insert(id, None);
    st.wake_blocked_on(Resource::Mutex(id));
}

/// Acquires shim rwlock `id` for reading.
pub(crate) fn rwlock_acquire_read(id: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    point(PointKind::Op("read"));
    loop {
        {
            let mut st = ctx.sched.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(SilentAbort);
            }
            let rw = st.rwlocks.entry(id).or_insert(RwSt { writer: None, readers: 0 });
            if rw.writer.is_none() {
                rw.readers += 1;
                return;
            }
        }
        block_on(Resource::RwRead(id), "read-wait");
    }
}

/// Releases a read acquisition of shim rwlock `id`.
pub(crate) fn rwlock_release_read(id: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    let mut st = ctx.sched.lock();
    st.push_event(ctx.tid, "read-unlock");
    let rw = st.rwlocks.entry(id).or_insert(RwSt { writer: None, readers: 1 });
    rw.readers = rw.readers.saturating_sub(1);
    if rw.readers == 0 {
        st.wake_blocked_on(Resource::RwWrite(id));
    }
}

/// Acquires shim rwlock `id` for writing.
pub(crate) fn rwlock_acquire_write(id: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    point(PointKind::Op("write"));
    loop {
        {
            let mut st = ctx.sched.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(SilentAbort);
            }
            let rw = st.rwlocks.entry(id).or_insert(RwSt { writer: None, readers: 0 });
            if rw.writer.is_none() && rw.readers == 0 {
                rw.writer = Some(ctx.tid);
                return;
            }
        }
        block_on(Resource::RwWrite(id), "write-wait");
    }
}

/// Releases a write acquisition of shim rwlock `id`.
pub(crate) fn rwlock_release_write(id: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    let mut st = ctx.sched.lock();
    st.push_event(ctx.tid, "write-unlock");
    st.rwlocks.insert(id, RwSt { writer: None, readers: 0 });
    st.wake_blocked_on(Resource::RwRead(id));
    st.wake_blocked_on(Resource::RwWrite(id));
}

/// Blocks the calling model thread until model thread `target` finishes.
pub(crate) fn join_thread(target: usize) {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    point(PointKind::Op("join"));
    loop {
        {
            let st = ctx.sched.lock();
            if st.aborting {
                drop(st);
                std::panic::panic_any(SilentAbort);
            }
            if st.threads[target].run == Run::Finished {
                return;
            }
        }
        block_on(Resource::Join(target), "join-wait");
    }
}
