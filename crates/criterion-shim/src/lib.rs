//! A minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in environments without network access, so the real
//! crates.io `criterion` cannot be fetched. This shim implements exactly the
//! API surface the benches in `crates/bench/benches/` use — `Criterion`,
//! `benchmark_group`, `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop.
//! Swapping the workspace `criterion` entry back to the real crate requires no
//! change to the bench sources.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level harness state (measurement defaults).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iterations: 0, elapsed: Duration::ZERO };
        // Warm-up: run the routine untimed until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            routine(&mut bencher);
        }
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        let measure_end = Instant::now() + self.measurement_time;
        let mut samples = 0usize;
        while samples < self.sample_size || Instant::now() < measure_end {
            routine(&mut bencher);
            samples += 1;
            if samples >= self.sample_size && Instant::now() >= measure_end {
                break;
            }
            if samples >= self.sample_size * 1000 {
                break; // routine is so fast the time budget never binds
            }
        }
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations.max(1) as u32
        };
        println!(
            "  {name}: {:.3} µs/iter ({} iters)",
            per_iter.as_secs_f64() * 1e6,
            bencher.iterations
        );
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark routine; `iter` times the closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one batch of the benchmarked operation.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        std_black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
