//! Preprocessing: node ordering and contraction.
//!
//! The contraction loop is the hottest build-time path in the repo, and it is what
//! gates continent-scale experiments: a naive lazy-update loop re-runs the full
//! O(deg²) witness sweep over the dense core on every queue pop and goes superlinear
//! past ~10k vertices. This implementation keeps preprocessing near-linear with three
//! techniques:
//!
//! * **cached priorities with neighbour-only invalidation** — contracting `v` marks
//!   only `v`'s surviving neighbours dirty; a priority is recomputed at most once per
//!   invalidation, when the vertex is popped;
//! * **staged, hop-limited witness searches** — a direct-edge (1-hop) scan, then a
//!   bounded 2-hop neighbour scan, and only for still-unresolved pairs a hop- and
//!   settle-limited multi-target Dijkstra (one search per *source* neighbour, not one
//!   per pair);
//! * **cheap priority estimates** — under lazy updates a priority is recomputed ~2-3×
//!   per vertex; estimates plan with shallow witness budgets
//!   ([`ESTIMATE_SETTLE_LIMIT`], degree-scaled) while the one thorough staged plan per
//!   vertex runs at contraction time (this alone took a 290k build from ~35s to ~19s);
//! * **degree-scaled witness budgets** — each witness-Dijkstra settle scans an
//!   adjacency list, so budgets shrink as the live degree grows: full strength on the
//!   planar bulk, `1/d`-scaled inside the densifying core, where long searches rarely
//!   find witnesses anyway;
//! * **min-degree hash-map endgame** — once the average live degree crosses
//!   [`ChConfig::core_degree_threshold`], the remaining near-clique core is eliminated
//!   in minimum-live-degree order on hash-map adjacency with 1-hop witness checks
//!   (linear-scan upserts plus futile witness searches previously made the last ~2k
//!   vertices of a 290k build cost more than the first 288k);
//! * **separator-guided priorities (experimental, off by default)** — a
//!   nested-dissection sweep labels each vertex with its separator depth as an upward
//!   search-space estimate ([`ChConfig::search_space_weight`]). On the generated
//!   grid-like networks this ordering *loses* to greedy on both axes (ND fill-in makes
//!   witness-based contraction slower and queries scan more), so the default weight is
//!   `0`; the knob remains for separator-structured inputs where it may pay off.
//!
//! Witness-search invariant: a *witness* for the pair `(u, t)` around `v` is a path
//! avoiding `v` (and all contracted vertices) of weight **at most** `w(u,v) + w(v,t)`;
//! a pair gets a shortcut iff no pass certifies a witness. Every pass uses the same
//! `<=` comparison, and every limit (hops, settles, cutoff) can only *miss* witnesses,
//! which adds redundant shortcuts but never breaks correctness.

use rnknn_graph::{Graph, NodeId, Weight, INFINITY};
use rnknn_partition::Partitioner;
use rnknn_pathfinding::heap::MinHeap;
use rnknn_persist::PVec;
use std::collections::HashMap;

/// Tuning parameters for CH preprocessing.
#[derive(Debug, Clone)]
pub struct ChConfig {
    /// Maximum number of vertices settled by each bounded witness Dijkstra. One such
    /// search now serves *all* unresolved pairs of a source neighbour (multi-target),
    /// so this budget is shared per source, not per pair — which is why the default is
    /// larger than a per-pair budget would be. Larger values produce fewer shortcuts
    /// (usually a net preprocessing speed-up, since shortcuts feed back into degree
    /// growth); correctness is unaffected (an inconclusive search adds the shortcut).
    pub witness_settle_limit: usize,
    /// Weighting of the "deleted neighbours" term in the node priority, which spreads
    /// contraction evenly across the network.
    pub deleted_neighbour_weight: i64,
    /// Weighting of the hierarchy-depth ("level") term in the node priority. Keeping
    /// the hierarchy shallow shrinks upward search spaces, which is what query time
    /// and IER-CH candidate cost scale with.
    pub level_weight: i64,
    /// Maximum number of edges a witness path may use in the final bounded-Dijkstra
    /// pass (`0` = unlimited). Witness searches run as staged passes — direct-edge
    /// (1-hop), bounded neighbour scan (2-hop), then this hop-limited Dijkstra — so
    /// the O(deg²) sweep over the dense core stops dominating preprocessing.
    pub hop_limit: usize,
    /// Average live degree at which the build switches to the dense-core endgame:
    /// the remaining near-clique core is eliminated in minimum-live-degree order on
    /// hash-map adjacency with 1-hop witness checks only (see
    /// `Contractor::contract_rest_by_degree`). `0.0` disables the endgame.
    ///
    /// Grid-like networks (no real highway hierarchy) always densify into such a
    /// core, so on them this fires near the end of every sizeable build; firing
    /// earlier (lower threshold) trades query-time search-space size for build
    /// time. Measured at 69k vertices: threshold 20 ≈ 2× faster build but ≈ 2×
    /// slower queries than threshold 40.
    pub core_degree_threshold: f64,
    /// Weighting of the *search-space estimate* term in the node priority: the
    /// nested-dissection separator depth of a vertex (see
    /// [`ChConfig::separator_cell_target`]) estimates how large its upward search
    /// space will be, so penalising deep separator vertices contracts cell interiors
    /// first and top separators last — the customizable-CH ordering, as a soft
    /// priority term. `0` (the default) disables the term and skips the
    /// nested-dissection sweep entirely.
    ///
    /// Experimental: on the generated grid-like networks this ordering measurably
    /// *loses* to pure greedy (at 69k vertices, weight 32: ~2.5× slower build, ~2×
    /// more shortcuts, ~2× slower queries — nested-dissection fill-in is exactly
    /// what witness-based contraction is worst at). It is kept for
    /// separator-structured inputs and ablation studies.
    pub search_space_weight: i64,
    /// Cell size at which the guidance nested-dissection sweep stops bisecting
    /// (only read when [`ChConfig::search_space_weight`] is non-zero). Smaller cells
    /// give finer guidance at slightly higher preprocessing cost; the sweep is
    /// near-linear per depth level, so the total cost is `O(n log(n / cell))`.
    pub separator_cell_target: usize,
    /// Enable stall-on-demand in the pruned bidirectional query searches: a settled
    /// vertex whose tentative distance is dominated via an edge from a
    /// higher-ranked vertex cannot lie on a shortest up-down path, so its edges are
    /// not relaxed. Shrinks grid search spaces measurably; exactness is unaffected
    /// (see `ch_scaling.rs`'s stall on/off test). Stored on the built hierarchy and
    /// togglable afterwards with `ContractionHierarchy::set_stall_on_demand`.
    pub stall_on_demand: bool,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            witness_settle_limit: 256,
            deleted_neighbour_weight: 2,
            level_weight: 2,
            hop_limit: 8,
            core_degree_threshold: 40.0,
            search_space_weight: 0,
            separator_cell_target: 64,
            stall_on_demand: true,
        }
    }
}

/// A preprocessed contraction hierarchy over an undirected road network.
///
/// The query arrays are [`PVec`]s: owned vectors when freshly built, zero-copy
/// views into a mapped artifact when loaded from disk (see `crate::persist`).
/// Query code is identical either way.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// `rank[v]` = contraction position of `v` (higher = more important).
    pub(crate) rank: PVec<u32>,
    /// Upward adjacency in CSR form: for each vertex, edges (original and shortcuts) to
    /// higher-ranked vertices only.
    pub(crate) up_offsets: PVec<u32>,
    pub(crate) up_targets: PVec<NodeId>,
    pub(crate) up_weights: PVec<Weight>,
    /// Total number of shortcuts added during preprocessing (reported by experiments).
    pub(crate) num_shortcuts: usize,
    /// Whether the pruned query searches apply stall-on-demand (from
    /// [`ChConfig::stall_on_demand`]; togglable via
    /// [`ContractionHierarchy::set_stall_on_demand`]).
    pub(crate) stall_on_demand: bool,
    /// Fingerprint of the [`ChConfig`] this hierarchy was built under (see
    /// `ChConfig::fingerprint`); persisted so loads can reject config drift.
    pub(crate) config_fingerprint: u64,
}

impl ContractionHierarchy {
    /// Builds the hierarchy with default parameters.
    pub fn build(graph: &Graph) -> Self {
        Self::build_with_config(graph, &ChConfig::default())
    }

    /// Builds the hierarchy with explicit parameters.
    pub fn build_with_config(graph: &Graph, config: &ChConfig) -> Self {
        let n = graph.num_vertices();
        let trace = std::env::var_os("RNKNN_CH_TRACE").is_some();
        let start = std::time::Instant::now();
        let mut c = Contractor::new(graph, config);

        // Initial priorities, computed once; afterwards a priority is only recomputed
        // when a neighbour's contraction marked it dirty.
        let mut queue: MinHeap<NodeId, i64> = MinHeap::with_capacity(n);
        for v in 0..n as NodeId {
            let p = c.compute_priority(v);
            c.priority[v as usize] = p;
            queue.push(p, v);
        }

        while let Some((key, v)) = queue.pop() {
            if c.contracted[v as usize] {
                continue;
            }
            // Stale duplicate from an earlier requeue: the authoritative entry carries
            // the cached priority.
            if key != c.priority[v as usize] {
                continue;
            }
            if c.dirty[v as usize] {
                c.dirty[v as usize] = false;
                let p = c.compute_priority(v);
                c.priority[v as usize] = p;
                // Requeue whenever the priority rose and any other candidate remains;
                // contracting on a momentarily-empty queue or on a tie with the next
                // best entry is only allowed when the priority did not rise.
                if p > key && !queue.is_empty() {
                    queue.push(p, v);
                    continue;
                }
            }
            c.contract(v);
            if trace && c.next_rank.is_multiple_of(10_000) {
                eprintln!(
                    "ch trace: contracted={} remaining={} avg_live_degree={:.2} shortcuts={} elapsed={:.2}s effort={:?}",
                    c.next_rank,
                    c.remaining,
                    c.average_live_degree(),
                    c.num_shortcuts,
                    start.elapsed().as_secs_f64(),
                    c.scratch.effort
                );
            }

            // Check whether the dense core has been reached (the live-degree sum is
            // maintained incrementally, so this is O(1) per contraction); if so,
            // freeze the current cached priorities as the contraction order and
            // contract the rest without further recomputation.
            if config.core_degree_threshold > 0.0
                && c.average_live_degree() > config.core_degree_threshold
            {
                if trace {
                    eprintln!(
                        "ch trace: dense-core fallback fired with remaining={} elapsed={:.2}s",
                        c.remaining,
                        start.elapsed().as_secs_f64()
                    );
                }
                c.contract_rest_by_degree();
                break;
            }
        }

        c.into_hierarchy(config.stall_on_demand, config.fingerprint())
    }

    /// Number of vertices in the hierarchy.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of a vertex (higher = contracted later = more important).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Vertices sorted by decreasing importance (highest rank first).
    pub fn vertices_by_importance(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.rank.len() as NodeId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(self.rank[v as usize]));
        order
    }

    /// Number of shortcut edges added during preprocessing.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Whether the pruned query searches apply stall-on-demand.
    pub fn stall_on_demand(&self) -> bool {
        self.stall_on_demand
    }

    /// Fingerprint of the [`ChConfig`] this hierarchy was built under.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// Toggles stall-on-demand on the pruned query searches (for ablations and the
    /// stall on/off exactness tests; results are identical either way, only the
    /// searched space changes).
    pub fn set_stall_on_demand(&mut self, enabled: bool) {
        self.stall_on_demand = enabled;
    }

    /// Upward edges (towards higher-ranked vertices) of `v`.
    #[inline]
    pub fn upward_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.up_offsets[v as usize] as usize;
        let hi = self.up_offsets[v as usize + 1] as usize;
        self.up_targets[lo..hi].iter().copied().zip(self.up_weights[lo..hi].iter().copied())
    }

    /// Approximate resident size in bytes (Figure 8(a) / 26(b)).
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.up_offsets.len() * 4
            + self.up_targets.len() * 4
            + self.up_weights.len() * std::mem::size_of::<Weight>()
    }
}

/// One shortcut that contracting a vertex would create: indices into the neighbour
/// list, the via weight, and whether inserting it creates a *new* edge (as opposed to
/// lowering an existing parallel edge — which [`upsert_edge`] does not count).
#[derive(Clone, Copy)]
struct PlannedShortcut {
    from: usize,
    to: usize,
    weight: Weight,
    is_new: bool,
}

/// All mutable state of one CH build. Keeping it in one struct lets the priority
/// estimate ([`Contractor::compute_priority`]) and the actual contraction
/// ([`Contractor::contract`]) share the same shortcut plan, so the edge-difference
/// term counts exactly the edges a contraction would insert.
struct Contractor<'a> {
    config: &'a ChConfig,
    /// Working adjacency among not-yet-contracted vertices. Starts as a copy of the
    /// input graph and gains shortcuts as contraction proceeds. Invariant: the list of
    /// a live vertex only contains live vertices (lists are pruned the moment a
    /// neighbour is contracted), which keeps witness searches fast.
    adjacency: Vec<Vec<(NodeId, Weight)>>,
    contracted: Vec<bool>,
    deleted_neighbours: Vec<i64>,
    /// Hierarchy-depth estimate: `level[t] >= level[v] + 1` for every contracted
    /// neighbour `v` of `t`. Penalising deep vertices keeps the hierarchy shallow,
    /// which directly bounds upward search-space sizes at query time.
    level: Vec<i64>,
    /// Cached node priorities; exact unless `dirty` is set.
    priority: Vec<i64>,
    /// Set for the surviving neighbours of every contracted vertex; cleared when the
    /// priority is lazily recomputed.
    dirty: Vec<bool>,
    /// Separator-depth search-space estimate per vertex (empty when
    /// [`ChConfig::search_space_weight`] is `0`): larger values mean shallower
    /// separators, which must contract later.
    guidance: Vec<i64>,
    rank: Vec<u32>,
    next_rank: u32,
    num_shortcuts: usize,
    remaining: usize,
    /// Σ over live vertices of their live adjacency-list lengths, maintained
    /// incrementally so [`Contractor::average_live_degree`] is O(1).
    live_edge_halves: usize,
    scratch: WitnessScratch,
    plan: Vec<PlannedShortcut>,
}

impl<'a> Contractor<'a> {
    fn new(graph: &Graph, config: &'a ChConfig) -> Self {
        let n = graph.num_vertices();
        let adjacency: Vec<Vec<(NodeId, Weight)>> =
            (0..n).map(|v| graph.neighbors(v as NodeId).collect()).collect();
        let live_edge_halves = adjacency.iter().map(|edges| edges.len()).sum();
        let guidance = if config.search_space_weight != 0 {
            separator_depths(graph, config.separator_cell_target.max(2))
        } else {
            Vec::new()
        };
        Contractor {
            config,
            adjacency,
            contracted: vec![false; n],
            deleted_neighbours: vec![0i64; n],
            level: vec![0i64; n],
            priority: vec![0i64; n],
            dirty: vec![false; n],
            guidance,
            rank: vec![0u32; n],
            next_rank: 0,
            num_shortcuts: 0,
            remaining: n,
            live_edge_halves,
            scratch: WitnessScratch::new(n),
            plan: Vec::new(),
        }
    }

    fn live_neighbours(&self, v: NodeId) -> Vec<(NodeId, Weight)> {
        self.adjacency[v as usize]
            .iter()
            .copied()
            .filter(|&(t, _)| !self.contracted[t as usize])
            .collect()
    }

    /// Priority of a vertex: edge difference plus a spreading term. The edge
    /// difference uses the same "would a new edge actually be inserted" rule as
    /// [`Contractor::contract`], so the estimate never systematically overcounts
    /// pairs whose shortcut merely lowers an existing parallel edge.
    ///
    /// The estimate plans with a shallow, degree-scaled witness-Dijkstra budget
    /// (from [`ESTIMATE_SETTLE_LIMIT`]): priorities are recomputed ~2-3× per vertex
    /// under lazy updates, and running the full staged search each time made
    /// ordering — not contraction — the dominant build cost at 250k+ vertices.
    /// Witnesses missed by the shallow budget are missed uniformly across
    /// candidates, so the *ranking* barely moves; the thorough passes still run
    /// exactly once per vertex, inside [`Contractor::contract`].
    fn compute_priority(&mut self, v: NodeId) -> i64 {
        let neighbours = self.live_neighbours(v);
        let estimate_settle = (ESTIMATE_SETTLE_LIMIT * 24 / neighbours.len().max(24)).max(8);
        plan_contraction(
            v,
            &neighbours,
            &self.adjacency,
            &self.contracted,
            self.config,
            estimate_settle,
            &mut self.scratch,
            &mut self.plan,
        );
        let new_edges = self.plan.iter().filter(|s| s.is_new).count();
        let edge_difference = new_edges as i64 - neighbours.len() as i64;
        let guidance =
            self.guidance.get(v as usize).map_or(0, |&g| g * self.config.search_space_weight);
        edge_difference * 4
            + self.deleted_neighbours[v as usize] * self.config.deleted_neighbour_weight
            + self.level[v as usize] * self.config.level_weight
            + guidance
    }

    /// Contracts `v`: assigns its rank, prunes and dirties its surviving neighbours,
    /// plans the shortcuts with the full staged witness passes (the one thorough
    /// plan each vertex gets), and inserts them.
    fn contract(&mut self, v: NodeId) {
        self.rank[v as usize] = self.next_rank;
        self.next_rank += 1;
        self.contracted[v as usize] = true;
        self.remaining -= 1;
        let neighbours = self.live_neighbours(v);
        // v's own (all-live, by the adjacency invariant) list leaves the live set.
        self.live_edge_halves -= self.adjacency[v as usize].len();
        let child_level = self.level[v as usize] + 1;
        for &(t, _) in &neighbours {
            self.deleted_neighbours[t as usize] += 1;
            self.level[t as usize] = self.level[t as usize].max(child_level);
            // Neighbour-only invalidation: only these vertices' priorities changed.
            self.dirty[t as usize] = true;
            // Prune edges into the contracted core so witness searches and priority
            // estimates only ever scan live vertices. Without this the working lists
            // of late-contracted hubs grow without bound and preprocessing
            // degenerates from seconds to hours on ~10k-vertex networks.
            let contracted = &self.contracted;
            let before = self.adjacency[t as usize].len();
            self.adjacency[t as usize].retain(|&(x, _)| !contracted[x as usize]);
            self.live_edge_halves -= before - self.adjacency[t as usize].len();
        }
        // Each settle of the witness Dijkstra scans an adjacency list, so its
        // budget is scaled down as the live degree grows — full strength at planar
        // degrees, 1/d-scaled inside the densifying core, where long searches
        // rarely find witnesses anyway (weaker searches only add shortcuts).
        let settle_limit = if self.config.witness_settle_limit == 0 {
            0
        } else {
            (self.config.witness_settle_limit * 24 / neighbours.len().max(24)).max(16)
        };
        plan_contraction(
            v,
            &neighbours,
            &self.adjacency,
            &self.contracted,
            self.config,
            settle_limit,
            &mut self.scratch,
            &mut self.plan,
        );
        for i in 0..self.plan.len() {
            let s = self.plan[i];
            let (u, _) = neighbours[s.from];
            let (t, _) = neighbours[s.to];
            if upsert_edge(&mut self.adjacency[u as usize], t, s.weight) {
                self.num_shortcuts += 1;
                self.live_edge_halves += 1;
                debug_assert!(s.is_new);
            } else {
                debug_assert!(!s.is_new);
            }
            if upsert_edge(&mut self.adjacency[t as usize], u, s.weight) {
                self.live_edge_halves += 1;
            }
        }
    }

    /// Average degree over the not-yet-contracted vertices, from the incrementally
    /// maintained live-edge sum (exact, because live adjacency lists are pruned
    /// eagerly — see the invariant on `adjacency`).
    fn average_live_degree(&self) -> f64 {
        if self.remaining == 0 {
            return 0.0;
        }
        self.live_edge_halves as f64 / self.remaining as f64
    }

    /// Dense-core endgame: contracts the remaining vertices in (lazily updated)
    /// minimum-live-degree order — the classic fill-reducing elimination rule — with
    /// the 1-hop direct-edge pass as the only witness check, on hash-map adjacency.
    ///
    /// Two cost cliffs motivate the switch. Long witness searches almost never find
    /// a witness inside a near-clique core but still cost `O(budget · degree)` per
    /// source (measured: the last ~1.1k vertices of a 69k build took 41 of 56
    /// seconds under full witness planning). And the linear-scan `upsert_edge` turns
    /// clique fill-in into an `O(degree³)` memory sweep per contraction once degrees
    /// reach the hundreds (measured: ~16 of 50 seconds at 290k). Hash-map adjacency
    /// makes every pair test and insertion O(1), and witness misses only ever add
    /// shortcuts — exactness is untouched (`core_contraction_fallback_stays_exact`).
    fn contract_rest_by_degree(&mut self) {
        let n = self.contracted.len();
        // Move the live core onto hash-map adjacency (weights keyed by neighbour).
        let mut maps: Vec<CoreMap> = vec![CoreMap::default(); n];
        let mut queue: MinHeap<NodeId, i64> = MinHeap::with_capacity(self.remaining);
        for (v, map) in maps.iter_mut().enumerate() {
            if self.contracted[v] {
                continue;
            }
            map.extend(self.adjacency[v].iter().copied());
            queue.push(map.len() as i64, v as NodeId);
        }
        while let Some((key, v)) = queue.pop() {
            if self.contracted[v as usize] {
                continue;
            }
            // Lazy update: degrees drift as the core contracts; requeue on mismatch
            // so the pop order tracks the live minimum degree.
            let degree = maps[v as usize].len() as i64;
            if key != degree {
                queue.push(degree, v);
                continue;
            }
            self.rank[v as usize] = self.next_rank;
            self.next_rank += 1;
            self.contracted[v as usize] = true;
            self.remaining -= 1;
            let neighbours: Vec<(NodeId, Weight)> = maps[v as usize].drain().collect();
            // v's surviving edges all point at later-contracted (higher-ranked)
            // vertices — exactly the upward list `into_hierarchy` reads.
            self.adjacency[v as usize] = neighbours.clone();
            for &(t, _) in &neighbours {
                maps[t as usize].remove(&v);
            }
            for (i, &(u, wu)) in neighbours.iter().enumerate() {
                for &(t, wt) in neighbours.iter().skip(i + 1) {
                    let via = wu + wt;
                    // 1-hop witness: an existing u–t edge at most as heavy as the
                    // via-v path; otherwise insert or lower the shortcut (counted as
                    // a shortcut only when the edge is new, as in `upsert_edge`).
                    let entry = maps[u as usize].entry(t);
                    let is_new = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
                    let slot = entry.or_insert(Weight::MAX);
                    if via < *slot {
                        *slot = via;
                        maps[t as usize].insert(u, via);
                    }
                    if is_new {
                        self.num_shortcuts += 1;
                    }
                }
            }
        }
    }

    /// Assembles the upward graph: for each vertex keep only edges towards
    /// higher-ranked vertices (original edges plus every shortcut accumulated in the
    /// working adjacency).
    fn into_hierarchy(
        self,
        stall_on_demand: bool,
        config_fingerprint: u64,
    ) -> ContractionHierarchy {
        let n = self.rank.len();
        let mut up_offsets = vec![0u32; n + 1];
        let mut up_targets = Vec::new();
        let mut up_weights = Vec::new();
        for v in 0..n {
            // Deduplicate parallel edges keeping the smallest weight.
            let mut ups: Vec<(NodeId, Weight)> = self.adjacency[v]
                .iter()
                .copied()
                .filter(|&(t, _)| self.rank[t as usize] > self.rank[v])
                .collect();
            ups.sort_unstable_by_key(|&(t, w)| (t, w));
            ups.dedup_by_key(|&mut (t, _)| t);
            for (t, w) in ups {
                up_targets.push(t);
                up_weights.push(w);
            }
            up_offsets[v + 1] = up_targets.len() as u32;
        }

        ContractionHierarchy {
            rank: self.rank.into(),
            up_offsets: up_offsets.into(),
            up_targets: up_targets.into(),
            up_weights: up_weights.into(),
            num_shortcuts: self.num_shortcuts,
            stall_on_demand,
            config_fingerprint,
        }
    }
}

/// Separator-depth ("search-space estimate") labels for every vertex: recursive
/// balanced bisection down to cells of at most `cell_target` vertices, recording for
/// each vertex the shallowest depth at which it lay on a bisection cut. The returned
/// guidance value is `max_depth + 1 - cut_depth` for cut vertices (top-level
/// separators largest) and `0` for cell interiors, so it slots directly into the
/// priority as a term that delays separator contraction.
///
/// On a separator-structured graph the upward search space of a vertex is (up to
/// constants) the total size of the separators enclosing it, which is what this depth
/// measures — hence "search-space estimate". The sweep is near-linear per depth level
/// and there are `O(log(n / cell_target))` levels.
fn separator_depths(graph: &Graph, cell_target: usize) -> Vec<i64> {
    let n = graph.num_vertices();
    let mut cut_depth = vec![u32::MAX; n];
    // Which side of the bisection currently being scanned each vertex is on
    // (`u8::MAX` = not in the current vertex set); reset after every bisection.
    let mut side = vec![u8::MAX; n];
    let partitioner = Partitioner::new();
    let all: Vec<NodeId> = graph.vertices().collect();
    let mut stack: Vec<(Vec<NodeId>, u32)> = vec![(all, 0)];
    let mut max_depth = 0u32;
    while let Some((vertices, depth)) = stack.pop() {
        if vertices.len() <= cell_target {
            continue;
        }
        max_depth = max_depth.max(depth);
        let assignment = partitioner.partition(graph, &vertices, 2);
        for (i, &v) in vertices.iter().enumerate() {
            side[v as usize] = assignment[i] as u8;
        }
        let mut parts: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
        for (i, &v) in vertices.iter().enumerate() {
            let s = assignment[i] as u8;
            // DFS order guarantees shallower bisections are scanned first, so the
            // first recorded depth is the shallowest cut containing the vertex.
            if cut_depth[v as usize] == u32::MAX
                && graph
                    .neighbor_ids(v)
                    .iter()
                    .any(|&t| side[t as usize] != u8::MAX && side[t as usize] != s)
            {
                cut_depth[v as usize] = depth;
            }
            parts[s as usize].push(v);
        }
        for &v in &vertices {
            side[v as usize] = u8::MAX;
        }
        for part in parts {
            if part.len() > cell_target {
                stack.push((part, depth + 1));
            }
        }
    }
    cut_depth
        .into_iter()
        .map(|d| if d == u32::MAX { 0 } else { (max_depth + 1 - d) as i64 })
        .collect()
}

/// The dense-core endgame performs hundreds of millions of single-`u32`-key map
/// operations; SipHash (std's default, DoS-resistant) is wasted on internal vertex
/// ids, so the core maps use a Fibonacci multiplicative hasher instead (~5 ns →
/// sub-ns per probe).
#[derive(Default, Clone)]
struct FibonacciHasher(u64);

impl std::hash::Hasher for FibonacciHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type CoreMap = HashMap<NodeId, Weight, std::hash::BuildHasherDefault<FibonacciHasher>>;

/// Settle budget of the witness Dijkstras inside priority *estimates*: deep enough
/// that the edge-difference ranking stays close to the thorough plan's, small enough
/// that the ~2-3 estimates per vertex stop dominating the build (estimates with the
/// full budget made ordering cost 3× contraction cost at 250k+ vertices).
const ESTIMATE_SETTLE_LIMIT: usize = 32;

/// Coarse witness-work counters behind the `RNKNN_CH_TRACE` diagnostics.
#[derive(Debug, Default, Clone, Copy)]
struct BuildEffort {
    plans: u64,
    two_hop_scans: u64,
    dijkstras: u64,
    dijkstra_settles: u64,
}

/// Decides, for every unordered pair of live neighbours of `v`, whether contracting
/// `v` requires a shortcut, writing the required shortcuts into `plan`.
///
/// Pairs are resolved by staged witness passes sharing one invariant — a witness is a
/// path avoiding `v` and all contracted vertices of weight `<=` the via-`v` weight:
///
/// 1. **1-hop**: a direct `u`–`t` edge (one scan of `u`'s list, which also records
///    whether a parallel edge exists for the `is_new` insertion rule);
/// 2. **2-hop**: a bounded scan of `u`'s neighbours' lists;
/// 3. **bounded Dijkstra**: multi-target, hop-limited ([`ChConfig::hop_limit`]) and
///    settle-limited, run once per *source* neighbour for all still-unresolved
///    targets.
///
/// `dijkstra_settle_limit` is the pass-3 settle budget; `0` skips the Dijkstras
/// entirely, and priority estimates pass a shallow budget derived from
/// [`ESTIMATE_SETTLE_LIMIT`]. A [`ChConfig::witness_settle_limit`] of `0` also
/// disables pass 2 (its budget scales with the limit).
#[allow(clippy::too_many_arguments)]
fn plan_contraction(
    v: NodeId,
    neighbours: &[(NodeId, Weight)],
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    dijkstra_settle_limit: usize,
    scratch: &mut WitnessScratch,
    plan: &mut Vec<PlannedShortcut>,
) {
    plan.clear();
    scratch.effort.plans += 1;
    if neighbours.len() < 2 {
        return;
    }
    for (i, &(u, wu)) in neighbours.iter().enumerate().take(neighbours.len() - 1) {
        // Register the targets: all later neighbours, each with its via-v cutoff.
        scratch.begin_targets();
        let mut unresolved = 0usize;
        for &(t, wt) in neighbours.iter().skip(i + 1) {
            scratch.add_target(t, wu + wt);
            unresolved += 1;
        }

        // Pass 1 (1-hop): direct edges from u. Also records existing parallel edges,
        // which is what makes the planned `is_new` flag match upsert_edge exactly.
        for &(x, w) in &adjacency[u as usize] {
            if let Some(via) = scratch.target_cutoff(x) {
                scratch.record_direct(x, w);
                if w <= via && scratch.mark_witnessed(x) {
                    unresolved -= 1;
                }
            }
        }

        // Pass 2 (2-hop): scan u's neighbours' lists, bounded so a dense core cannot
        // turn this into a quadratic sweep.
        if unresolved > 0 && config.witness_settle_limit > 0 {
            let mut budget = config.witness_settle_limit * 16;
            'two_hop: for &(x, wx) in &adjacency[u as usize] {
                if x == v || contracted[x as usize] {
                    continue;
                }
                for &(y, wxy) in &adjacency[x as usize] {
                    if budget == 0 {
                        break 'two_hop;
                    }
                    budget -= 1;
                    scratch.effort.two_hop_scans += 1;
                    if let Some(via) = scratch.target_cutoff(y) {
                        if wx + wxy <= via && scratch.mark_witnessed(y) {
                            unresolved -= 1;
                            if unresolved == 0 {
                                break 'two_hop;
                            }
                        }
                    }
                }
            }
        }

        // Pass 3: bounded multi-target Dijkstra for the remaining pairs (skipped in
        // the cheap estimation mode).
        if unresolved > 0 && dijkstra_settle_limit > 0 {
            witness_search(
                u,
                v,
                unresolved,
                adjacency,
                contracted,
                config,
                dijkstra_settle_limit,
                scratch,
            );
        }

        for (j, &(t, wt)) in neighbours.iter().enumerate().skip(i + 1) {
            if !scratch.is_witnessed(t) {
                plan.push(PlannedShortcut {
                    from: i,
                    to: j,
                    weight: wu + wt,
                    is_new: !scratch.has_direct(t),
                });
            }
        }
    }
}

/// Inserts edge `(t, w)` or lowers the weight of an existing parallel edge. Returns true
/// when a new edge was inserted. Keeping the working lists free of parallel edges is
/// what keeps witness searches (which scan these lists) fast.
fn upsert_edge(edges: &mut Vec<(NodeId, Weight)>, t: NodeId, w: Weight) -> bool {
    match edges.iter_mut().find(|(x, _)| *x == t) {
        Some(entry) => {
            if w < entry.1 {
                entry.1 = w;
            }
            false
        }
        None => {
            edges.push((t, w));
            true
        }
    }
}

/// Reusable witness-search state: full-size arrays reset via touched lists, so each
/// search costs no allocations regardless of how many millions of searches
/// preprocessing performs.
struct WitnessScratch {
    /// Tentative distances of the current Dijkstra pass.
    dist: Vec<Weight>,
    /// Edge count of the path behind `dist` (for the hop limit).
    hops: Vec<u32>,
    touched: Vec<NodeId>,
    heap: MinHeap<NodeId>,
    /// Per-target state for the current source: via-v cutoff, direct-edge flag,
    /// witnessed flag. `INFINITY` in `via` means "not a target".
    via: Vec<Weight>,
    direct: Vec<bool>,
    witnessed: Vec<bool>,
    target_touched: Vec<NodeId>,
    /// Largest via cutoff among the current targets (global search bound).
    max_cutoff: Weight,
    /// Coarse witness-work counters behind the `RNKNN_CH_TRACE` diagnostics.
    effort: BuildEffort,
}

impl WitnessScratch {
    fn new(n: usize) -> Self {
        WitnessScratch {
            dist: vec![INFINITY; n],
            hops: vec![0; n],
            touched: Vec::new(),
            heap: MinHeap::new(),
            via: vec![INFINITY; n],
            direct: vec![false; n],
            witnessed: vec![false; n],
            target_touched: Vec::new(),
            max_cutoff: 0,
            effort: BuildEffort::default(),
        }
    }

    fn reset_search(&mut self) {
        for &t in &self.touched {
            self.dist[t as usize] = INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
    }

    fn begin_targets(&mut self) {
        for &t in &self.target_touched {
            self.via[t as usize] = INFINITY;
            self.direct[t as usize] = false;
            self.witnessed[t as usize] = false;
        }
        self.target_touched.clear();
        self.max_cutoff = 0;
    }

    fn add_target(&mut self, t: NodeId, cutoff: Weight) {
        self.via[t as usize] = cutoff;
        self.target_touched.push(t);
        self.max_cutoff = self.max_cutoff.max(cutoff);
    }

    /// The via cutoff of `t`, or `None` when `t` is not a current target.
    #[inline]
    fn target_cutoff(&self, t: NodeId) -> Option<Weight> {
        let via = self.via[t as usize];
        (via != INFINITY).then_some(via)
    }

    #[inline]
    fn record_direct(&mut self, t: NodeId, _w: Weight) {
        self.direct[t as usize] = true;
    }

    #[inline]
    fn has_direct(&self, t: NodeId) -> bool {
        self.direct[t as usize]
    }

    /// Marks `t` witnessed; returns true when it was not already.
    #[inline]
    fn mark_witnessed(&mut self, t: NodeId) -> bool {
        !std::mem::replace(&mut self.witnessed[t as usize], true)
    }

    #[inline]
    fn is_witnessed(&self, t: NodeId) -> bool {
        self.witnessed[t as usize]
    }
}

/// Bounded multi-target Dijkstra from `source` avoiding `skip` and all contracted
/// vertices, resolving the still-unwitnessed targets registered in `scratch`.
///
/// The global bound is checked **before** a popped vertex is matched against the
/// targets, so the `d > cutoff` semantics are identical for targets and non-targets:
/// once the frontier passes the largest via cutoff, no remaining target can have a
/// witness, and the search stops. A target settled within the bound is a witness iff
/// its distance is `<= ` its own via cutoff (same `<=` rule as the 1-/2-hop passes).
#[allow(clippy::too_many_arguments)]
fn witness_search(
    source: NodeId,
    skip: NodeId,
    mut unresolved: usize,
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    settle_limit: usize,
    scratch: &mut WitnessScratch,
) {
    scratch.reset_search();
    scratch.effort.dijkstras += 1;
    scratch.dist[source as usize] = 0;
    scratch.hops[source as usize] = 0;
    scratch.touched.push(source);
    scratch.heap.push(0, source);
    let cutoff = scratch.max_cutoff;
    let mut settled = 0usize;
    while let Some((d, x)) = scratch.heap.pop() {
        if d > scratch.dist[x as usize] {
            continue;
        }
        // Bound check first: beyond the largest via cutoff nothing can be a witness,
        // so a target settled past the bound must not be reported as one.
        if d > cutoff {
            break;
        }
        if scratch.target_cutoff(x).is_some_and(|via| d <= via) && scratch.mark_witnessed(x) {
            unresolved -= 1;
            if unresolved == 0 {
                break;
            }
        }
        settled += 1;
        scratch.effort.dijkstra_settles += 1;
        if settled > settle_limit {
            break;
        }
        if config.hop_limit > 0 && scratch.hops[x as usize] >= config.hop_limit as u32 {
            continue;
        }
        for &(t, w) in &adjacency[x as usize] {
            if t == skip || contracted[t as usize] {
                continue;
            }
            let nd = d + w;
            if nd <= cutoff && nd < scratch.dist[t as usize] {
                if scratch.dist[t as usize] == INFINITY {
                    scratch.touched.push(t);
                }
                scratch.dist[t as usize] = nd;
                scratch.hops[t as usize] = scratch.hops[x as usize] + 1;
                scratch.heap.push(nd, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder};
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn distances_match_dijkstra_on_random_networks() {
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(800, 21));
            let g = net.graph(kind);
            let ch = ContractionHierarchy::build(&g);
            let n = g.num_vertices() as NodeId;
            for i in 0..60u32 {
                let s = (i * 131) % n;
                let t = (i * 467 + 11) % n;
                assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t} {kind:?}");
            }
        }
    }

    #[test]
    fn handles_trivial_and_disconnected_graphs() {
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g);
        assert_eq!(ch.distance(0, 2), 7);
        assert_eq!(ch.distance(0, 0), 0);
        assert_eq!(ch.distance(0, 4), INFINITY);
        assert_eq!(ch.num_vertices(), 5);
    }

    #[test]
    fn ranks_form_a_permutation() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(300, 2));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let r = ch.rank(v) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let order = ch.vertices_by_importance();
        assert_eq!(order.len(), g.num_vertices());
        assert_eq!(ch.rank(order[0]) as usize, g.num_vertices() - 1);
    }

    #[test]
    fn shortcut_count_and_memory_reported() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 9));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        assert!(ch.memory_bytes() > 0);
        // Shortcut count should be modest relative to the number of edges on a planar
        // network.
        assert!(ch.num_shortcuts() < g.num_edges() * 4);
    }

    #[test]
    fn hop_limited_witnesses_stay_exact() {
        // Even a 1-hop limit (only direct edges and single-edge Dijkstra steps can
        // certify witnesses) must stay exact — it merely inserts more shortcuts.
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 77));
        let g = net.graph(EdgeWeightKind::Time);
        let tight = ChConfig { hop_limit: 1, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &tight);
        let unlimited = ChConfig { hop_limit: 0, ..ChConfig::default() };
        let ch_unlimited = ContractionHierarchy::build_with_config(&g, &unlimited);
        let n = g.num_vertices() as NodeId;
        for i in 0..50u32 {
            let s = (i * 211) % n;
            let t = (i * 401 + 3) % n;
            let want = dijkstra::distance(&g, s, t);
            assert_eq!(ch.distance(s, t), want, "hop-limited {s}->{t}");
            assert_eq!(ch_unlimited.distance(s, t), want, "unlimited {s}->{t}");
        }
        // Tighter witness passes can only add shortcuts, never remove them.
        assert!(ch.num_shortcuts() >= ch_unlimited.num_shortcuts());
    }

    #[test]
    fn core_contraction_fallback_stays_exact() {
        // A threshold below the planar average degree forces contract-rest-by-rank
        // almost immediately; distances must still be exact.
        let net = RoadNetwork::generate(&GeneratorConfig::new(700, 5));
        let g = net.graph(EdgeWeightKind::Distance);
        let eager = ChConfig { core_degree_threshold: 0.1, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &eager);
        let n = g.num_vertices() as NodeId;
        for i in 0..50u32 {
            let s = (i * 97) % n;
            let t = (i * 307 + 13) % n;
            assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
        // The fallback still assigns every rank exactly once.
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            seen[ch.rank(v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn disabled_fallback_and_tiny_settle_limit_stay_exact() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(400, 31));
        let g = net.graph(EdgeWeightKind::Distance);
        let config =
            ChConfig { witness_settle_limit: 2, core_degree_threshold: 0.0, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &config);
        let n = g.num_vertices() as NodeId;
        for i in 0..40u32 {
            let s = (i * 53) % n;
            let t = (i * 173 + 7) % n;
            assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
    }
}
