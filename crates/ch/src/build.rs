//! Preprocessing: node ordering and contraction.
//!
//! The contraction loop is the hottest build-time path in the repo, and it is what
//! gates continent-scale experiments: a naive lazy-update loop re-runs the full
//! O(deg²) witness sweep over the dense core on every queue pop and goes superlinear
//! past ~10k vertices. This implementation keeps preprocessing near-linear with three
//! techniques:
//!
//! * **cached priorities with neighbour-only invalidation** — contracting `v` marks
//!   only `v`'s surviving neighbours dirty; a priority is recomputed at most once per
//!   invalidation, when the vertex is popped;
//! * **staged, hop-limited witness searches** — a direct-edge (1-hop) scan, then a
//!   bounded 2-hop neighbour scan, and only for still-unresolved pairs a hop- and
//!   settle-limited multi-target Dijkstra (one search per *source* neighbour, not one
//!   per pair);
//! * **contract-rest-by-rank** — once the average live degree crosses
//!   [`ChConfig::core_degree_threshold`], the remaining dense-core vertices are
//!   contracted in their current priority order with no further recomputation.
//!
//! Witness-search invariant: a *witness* for the pair `(u, t)` around `v` is a path
//! avoiding `v` (and all contracted vertices) of weight **at most** `w(u,v) + w(v,t)`;
//! a pair gets a shortcut iff no pass certifies a witness. Every pass uses the same
//! `<=` comparison, and every limit (hops, settles, cutoff) can only *miss* witnesses,
//! which adds redundant shortcuts but never breaks correctness.

use rnknn_graph::{Graph, NodeId, Weight, INFINITY};
use rnknn_pathfinding::heap::MinHeap;

/// Tuning parameters for CH preprocessing.
#[derive(Debug, Clone)]
pub struct ChConfig {
    /// Maximum number of vertices settled by each bounded witness Dijkstra. One such
    /// search now serves *all* unresolved pairs of a source neighbour (multi-target),
    /// so this budget is shared per source, not per pair — which is why the default is
    /// larger than a per-pair budget would be. Larger values produce fewer shortcuts
    /// (usually a net preprocessing speed-up, since shortcuts feed back into degree
    /// growth); correctness is unaffected (an inconclusive search adds the shortcut).
    pub witness_settle_limit: usize,
    /// Weighting of the "deleted neighbours" term in the node priority, which spreads
    /// contraction evenly across the network.
    pub deleted_neighbour_weight: i64,
    /// Weighting of the hierarchy-depth ("level") term in the node priority. Keeping
    /// the hierarchy shallow shrinks upward search spaces, which is what query time
    /// and IER-CH candidate cost scale with.
    pub level_weight: i64,
    /// Maximum number of edges a witness path may use in the final bounded-Dijkstra
    /// pass (`0` = unlimited). Witness searches run as staged passes — direct-edge
    /// (1-hop), bounded neighbour scan (2-hop), then this hop-limited Dijkstra — so
    /// the O(deg²) sweep over the dense core stops dominating preprocessing.
    pub hop_limit: usize,
    /// Average live degree at which the build switches to contract-rest-by-rank:
    /// the remaining (dense-core) vertices are contracted in their current cached
    /// priority order without further recomputation. `0.0` disables the fallback.
    ///
    /// With the staged witness passes the measured builds never benefit from firing
    /// this early (a frozen order produces more shortcuts, which is its own
    /// slowdown), so the default is a safety net against pathological cores rather
    /// than a knob that triggers on ordinary road networks.
    pub core_degree_threshold: f64,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            witness_settle_limit: 256,
            deleted_neighbour_weight: 2,
            level_weight: 2,
            hop_limit: 8,
            core_degree_threshold: 40.0,
        }
    }
}

/// How many contractions happen between checks of the average live degree (the
/// trigger for contract-rest-by-rank). Each check is O(live vertices), so the total
/// checking overhead stays O(n²/interval) even in the worst case.
const DEGREE_CHECK_INTERVAL: usize = 256;

/// A preprocessed contraction hierarchy over an undirected road network.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// `rank[v]` = contraction position of `v` (higher = more important).
    rank: Vec<u32>,
    /// Upward adjacency in CSR form: for each vertex, edges (original and shortcuts) to
    /// higher-ranked vertices only.
    up_offsets: Vec<u32>,
    up_targets: Vec<NodeId>,
    up_weights: Vec<Weight>,
    /// Total number of shortcuts added during preprocessing (reported by experiments).
    num_shortcuts: usize,
}

impl ContractionHierarchy {
    /// Builds the hierarchy with default parameters.
    pub fn build(graph: &Graph) -> Self {
        Self::build_with_config(graph, &ChConfig::default())
    }

    /// Builds the hierarchy with explicit parameters.
    pub fn build_with_config(graph: &Graph, config: &ChConfig) -> Self {
        let n = graph.num_vertices();
        let mut c = Contractor::new(graph, config);

        // Initial priorities, computed once; afterwards a priority is only recomputed
        // when a neighbour's contraction marked it dirty.
        let mut queue: MinHeap<NodeId, i64> = MinHeap::with_capacity(n);
        for v in 0..n as NodeId {
            let p = c.compute_priority(v);
            c.priority[v as usize] = p;
            queue.push(p, v);
        }

        let mut until_degree_check = DEGREE_CHECK_INTERVAL;
        while let Some((key, v)) = queue.pop() {
            if c.contracted[v as usize] {
                continue;
            }
            // Stale duplicate from an earlier requeue: the authoritative entry carries
            // the cached priority.
            if key != c.priority[v as usize] {
                continue;
            }
            let mut plan_is_fresh = false;
            if c.dirty[v as usize] {
                c.dirty[v as usize] = false;
                let p = c.compute_priority(v);
                c.priority[v as usize] = p;
                // Requeue whenever the priority rose and any other candidate remains;
                // contracting on a momentarily-empty queue or on a tie with the next
                // best entry is only allowed when the priority did not rise.
                if p > key && !queue.is_empty() {
                    queue.push(p, v);
                    continue;
                }
                // The plan compute_priority just produced is exactly the contraction
                // plan for v (nothing was contracted in between), so contract() can
                // reuse it instead of re-running the witness passes.
                plan_is_fresh = true;
            }
            c.contract(v, plan_is_fresh);

            // Periodically check whether the dense core has been reached; if so,
            // freeze the current cached priorities as the contraction order and
            // contract the rest without further recomputation.
            until_degree_check -= 1;
            if until_degree_check == 0 {
                until_degree_check = DEGREE_CHECK_INTERVAL;
                if config.core_degree_threshold > 0.0
                    && c.average_live_degree() > config.core_degree_threshold
                {
                    c.contract_rest_by_rank();
                    break;
                }
            }
        }

        c.into_hierarchy()
    }

    /// Number of vertices in the hierarchy.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of a vertex (higher = contracted later = more important).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Vertices sorted by decreasing importance (highest rank first).
    pub fn vertices_by_importance(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.rank.len() as NodeId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(self.rank[v as usize]));
        order
    }

    /// Number of shortcut edges added during preprocessing.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Upward edges (towards higher-ranked vertices) of `v`.
    #[inline]
    pub fn upward_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.up_offsets[v as usize] as usize;
        let hi = self.up_offsets[v as usize + 1] as usize;
        self.up_targets[lo..hi].iter().copied().zip(self.up_weights[lo..hi].iter().copied())
    }

    /// Approximate resident size in bytes (Figure 8(a) / 26(b)).
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.up_offsets.len() * 4
            + self.up_targets.len() * 4
            + self.up_weights.len() * std::mem::size_of::<Weight>()
    }
}

/// One shortcut that contracting a vertex would create: indices into the neighbour
/// list, the via weight, and whether inserting it creates a *new* edge (as opposed to
/// lowering an existing parallel edge — which [`upsert_edge`] does not count).
#[derive(Clone, Copy)]
struct PlannedShortcut {
    from: usize,
    to: usize,
    weight: Weight,
    is_new: bool,
}

/// All mutable state of one CH build. Keeping it in one struct lets the priority
/// estimate ([`Contractor::compute_priority`]) and the actual contraction
/// ([`Contractor::contract`]) share the same shortcut plan, so the edge-difference
/// term counts exactly the edges a contraction would insert.
struct Contractor<'a> {
    config: &'a ChConfig,
    /// Working adjacency among not-yet-contracted vertices. Starts as a copy of the
    /// input graph and gains shortcuts as contraction proceeds. Invariant: the list of
    /// a live vertex only contains live vertices (lists are pruned the moment a
    /// neighbour is contracted), which keeps witness searches fast.
    adjacency: Vec<Vec<(NodeId, Weight)>>,
    contracted: Vec<bool>,
    deleted_neighbours: Vec<i64>,
    /// Hierarchy-depth estimate: `level[t] >= level[v] + 1` for every contracted
    /// neighbour `v` of `t`. Penalising deep vertices keeps the hierarchy shallow,
    /// which directly bounds upward search-space sizes at query time.
    level: Vec<i64>,
    /// Cached node priorities; exact unless `dirty` is set.
    priority: Vec<i64>,
    /// Set for the surviving neighbours of every contracted vertex; cleared when the
    /// priority is lazily recomputed.
    dirty: Vec<bool>,
    rank: Vec<u32>,
    next_rank: u32,
    num_shortcuts: usize,
    remaining: usize,
    scratch: WitnessScratch,
    plan: Vec<PlannedShortcut>,
}

impl<'a> Contractor<'a> {
    fn new(graph: &Graph, config: &'a ChConfig) -> Self {
        let n = graph.num_vertices();
        Contractor {
            config,
            adjacency: (0..n).map(|v| graph.neighbors(v as NodeId).collect()).collect(),
            contracted: vec![false; n],
            deleted_neighbours: vec![0i64; n],
            level: vec![0i64; n],
            priority: vec![0i64; n],
            dirty: vec![false; n],
            rank: vec![0u32; n],
            next_rank: 0,
            num_shortcuts: 0,
            remaining: n,
            scratch: WitnessScratch::new(n),
            plan: Vec::new(),
        }
    }

    fn live_neighbours(&self, v: NodeId) -> Vec<(NodeId, Weight)> {
        self.adjacency[v as usize]
            .iter()
            .copied()
            .filter(|&(t, _)| !self.contracted[t as usize])
            .collect()
    }

    /// Priority of a vertex: edge difference plus a spreading term. The edge
    /// difference uses the same "would a new edge actually be inserted" rule as
    /// [`Contractor::contract`], so the estimate never systematically overcounts
    /// pairs whose shortcut merely lowers an existing parallel edge.
    fn compute_priority(&mut self, v: NodeId) -> i64 {
        let neighbours = self.live_neighbours(v);
        plan_contraction(
            v,
            &neighbours,
            &self.adjacency,
            &self.contracted,
            self.config,
            &mut self.scratch,
            &mut self.plan,
        );
        let new_edges = self.plan.iter().filter(|s| s.is_new).count();
        let edge_difference = new_edges as i64 - neighbours.len() as i64;
        edge_difference * 4
            + self.deleted_neighbours[v as usize] * self.config.deleted_neighbour_weight
            + self.level[v as usize] * self.config.level_weight
    }

    /// Contracts `v`: assigns its rank, prunes and dirties its surviving neighbours,
    /// and inserts the planned shortcuts.
    ///
    /// When `plan_is_fresh` is set, `self.plan` was produced by a
    /// [`Contractor::compute_priority`] call for `v` on this very queue pop (nothing
    /// contracted in between) and is reused as-is — witness planning is the dominant
    /// build cost, and on the hot path (dirty pop → recompute → contract) this halves
    /// it. The plan is position-stable: both paths see the same live-neighbour list,
    /// all witness passes already exclude `v` and contracted vertices, and the
    /// pruning below only removes edges those passes ignore anyway.
    fn contract(&mut self, v: NodeId, plan_is_fresh: bool) {
        self.rank[v as usize] = self.next_rank;
        self.next_rank += 1;
        self.contracted[v as usize] = true;
        self.remaining -= 1;
        let neighbours = self.live_neighbours(v);
        let child_level = self.level[v as usize] + 1;
        for &(t, _) in &neighbours {
            self.deleted_neighbours[t as usize] += 1;
            self.level[t as usize] = self.level[t as usize].max(child_level);
            // Neighbour-only invalidation: only these vertices' priorities changed.
            self.dirty[t as usize] = true;
            // Prune edges into the contracted core so witness searches and priority
            // estimates only ever scan live vertices. Without this the working lists
            // of late-contracted hubs grow without bound and preprocessing
            // degenerates from seconds to hours on ~10k-vertex networks.
            let contracted = &self.contracted;
            self.adjacency[t as usize].retain(|&(x, _)| !contracted[x as usize]);
        }
        if !plan_is_fresh {
            plan_contraction(
                v,
                &neighbours,
                &self.adjacency,
                &self.contracted,
                self.config,
                &mut self.scratch,
                &mut self.plan,
            );
        }
        for i in 0..self.plan.len() {
            let s = self.plan[i];
            let (u, _) = neighbours[s.from];
            let (t, _) = neighbours[s.to];
            if upsert_edge(&mut self.adjacency[u as usize], t, s.weight) {
                self.num_shortcuts += 1;
                debug_assert!(s.is_new);
            } else {
                debug_assert!(!s.is_new);
            }
            upsert_edge(&mut self.adjacency[t as usize], u, s.weight);
        }
    }

    /// Average degree over the not-yet-contracted vertices. Exact, because live
    /// adjacency lists are pruned eagerly (see the invariant on `adjacency`).
    fn average_live_degree(&self) -> f64 {
        if self.remaining == 0 {
            return 0.0;
        }
        let total: usize = (0..self.adjacency.len())
            .filter(|&v| !self.contracted[v])
            .map(|v| self.adjacency[v].len())
            .sum();
        total as f64 / self.remaining as f64
    }

    /// Contract-rest-by-rank fallback for the dense core: the remaining vertices are
    /// contracted in their current cached priority order, with witness searches still
    /// limiting shortcut growth but no further priority recomputation.
    fn contract_rest_by_rank(&mut self) {
        let mut rest: Vec<NodeId> = (0..self.contracted.len() as NodeId)
            .filter(|&v| !self.contracted[v as usize])
            .collect();
        rest.sort_unstable_by_key(|&v| (self.priority[v as usize], v));
        for v in rest {
            self.contract(v, false);
        }
    }

    /// Assembles the upward graph: for each vertex keep only edges towards
    /// higher-ranked vertices (original edges plus every shortcut accumulated in the
    /// working adjacency).
    fn into_hierarchy(self) -> ContractionHierarchy {
        let n = self.rank.len();
        let mut up_offsets = vec![0u32; n + 1];
        let mut up_targets = Vec::new();
        let mut up_weights = Vec::new();
        for v in 0..n {
            // Deduplicate parallel edges keeping the smallest weight.
            let mut ups: Vec<(NodeId, Weight)> = self.adjacency[v]
                .iter()
                .copied()
                .filter(|&(t, _)| self.rank[t as usize] > self.rank[v])
                .collect();
            ups.sort_unstable_by_key(|&(t, w)| (t, w));
            ups.dedup_by_key(|&mut (t, _)| t);
            for (t, w) in ups {
                up_targets.push(t);
                up_weights.push(w);
            }
            up_offsets[v + 1] = up_targets.len() as u32;
        }

        ContractionHierarchy {
            rank: self.rank,
            up_offsets,
            up_targets,
            up_weights,
            num_shortcuts: self.num_shortcuts,
        }
    }
}

/// Decides, for every unordered pair of live neighbours of `v`, whether contracting
/// `v` requires a shortcut, writing the required shortcuts into `plan`.
///
/// Pairs are resolved by staged witness passes sharing one invariant — a witness is a
/// path avoiding `v` and all contracted vertices of weight `<=` the via-`v` weight:
///
/// 1. **1-hop**: a direct `u`–`t` edge (one scan of `u`'s list, which also records
///    whether a parallel edge exists for the `is_new` insertion rule);
/// 2. **2-hop**: a bounded scan of `u`'s neighbours' lists;
/// 3. **bounded Dijkstra**: multi-target, hop-limited ([`ChConfig::hop_limit`]) and
///    settle-limited, run once per *source* neighbour for all still-unresolved
///    targets.
fn plan_contraction(
    v: NodeId,
    neighbours: &[(NodeId, Weight)],
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
    plan: &mut Vec<PlannedShortcut>,
) {
    plan.clear();
    if neighbours.len() < 2 {
        return;
    }
    for (i, &(u, wu)) in neighbours.iter().enumerate().take(neighbours.len() - 1) {
        // Register the targets: all later neighbours, each with its via-v cutoff.
        scratch.begin_targets();
        let mut unresolved = 0usize;
        for &(t, wt) in neighbours.iter().skip(i + 1) {
            scratch.add_target(t, wu + wt);
            unresolved += 1;
        }

        // Pass 1 (1-hop): direct edges from u. Also records existing parallel edges,
        // which is what makes the planned `is_new` flag match upsert_edge exactly.
        for &(x, w) in &adjacency[u as usize] {
            if let Some(via) = scratch.target_cutoff(x) {
                scratch.record_direct(x, w);
                if w <= via && scratch.mark_witnessed(x) {
                    unresolved -= 1;
                }
            }
        }

        // Pass 2 (2-hop): scan u's neighbours' lists, bounded so a dense core cannot
        // turn this into a quadratic sweep.
        if unresolved > 0 {
            let mut budget = config.witness_settle_limit * 16;
            'two_hop: for &(x, wx) in &adjacency[u as usize] {
                if x == v || contracted[x as usize] {
                    continue;
                }
                for &(y, wxy) in &adjacency[x as usize] {
                    if budget == 0 {
                        break 'two_hop;
                    }
                    budget -= 1;
                    if let Some(via) = scratch.target_cutoff(y) {
                        if wx + wxy <= via && scratch.mark_witnessed(y) {
                            unresolved -= 1;
                            if unresolved == 0 {
                                break 'two_hop;
                            }
                        }
                    }
                }
            }
        }

        // Pass 3: bounded multi-target Dijkstra for the remaining pairs.
        if unresolved > 0 {
            witness_search(u, v, unresolved, adjacency, contracted, config, scratch);
        }

        for (j, &(t, wt)) in neighbours.iter().enumerate().skip(i + 1) {
            if !scratch.is_witnessed(t) {
                plan.push(PlannedShortcut {
                    from: i,
                    to: j,
                    weight: wu + wt,
                    is_new: !scratch.has_direct(t),
                });
            }
        }
    }
}

/// Inserts edge `(t, w)` or lowers the weight of an existing parallel edge. Returns true
/// when a new edge was inserted. Keeping the working lists free of parallel edges is
/// what keeps witness searches (which scan these lists) fast.
fn upsert_edge(edges: &mut Vec<(NodeId, Weight)>, t: NodeId, w: Weight) -> bool {
    match edges.iter_mut().find(|(x, _)| *x == t) {
        Some(entry) => {
            if w < entry.1 {
                entry.1 = w;
            }
            false
        }
        None => {
            edges.push((t, w));
            true
        }
    }
}

/// Reusable witness-search state: full-size arrays reset via touched lists, so each
/// search costs no allocations regardless of how many millions of searches
/// preprocessing performs.
struct WitnessScratch {
    /// Tentative distances of the current Dijkstra pass.
    dist: Vec<Weight>,
    /// Edge count of the path behind `dist` (for the hop limit).
    hops: Vec<u32>,
    touched: Vec<NodeId>,
    heap: MinHeap<NodeId>,
    /// Per-target state for the current source: via-v cutoff, direct-edge flag,
    /// witnessed flag. `INFINITY` in `via` means "not a target".
    via: Vec<Weight>,
    direct: Vec<bool>,
    witnessed: Vec<bool>,
    target_touched: Vec<NodeId>,
    /// Largest via cutoff among the current targets (global search bound).
    max_cutoff: Weight,
}

impl WitnessScratch {
    fn new(n: usize) -> Self {
        WitnessScratch {
            dist: vec![INFINITY; n],
            hops: vec![0; n],
            touched: Vec::new(),
            heap: MinHeap::new(),
            via: vec![INFINITY; n],
            direct: vec![false; n],
            witnessed: vec![false; n],
            target_touched: Vec::new(),
            max_cutoff: 0,
        }
    }

    fn reset_search(&mut self) {
        for &t in &self.touched {
            self.dist[t as usize] = INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
    }

    fn begin_targets(&mut self) {
        for &t in &self.target_touched {
            self.via[t as usize] = INFINITY;
            self.direct[t as usize] = false;
            self.witnessed[t as usize] = false;
        }
        self.target_touched.clear();
        self.max_cutoff = 0;
    }

    fn add_target(&mut self, t: NodeId, cutoff: Weight) {
        self.via[t as usize] = cutoff;
        self.target_touched.push(t);
        self.max_cutoff = self.max_cutoff.max(cutoff);
    }

    /// The via cutoff of `t`, or `None` when `t` is not a current target.
    #[inline]
    fn target_cutoff(&self, t: NodeId) -> Option<Weight> {
        let via = self.via[t as usize];
        (via != INFINITY).then_some(via)
    }

    #[inline]
    fn record_direct(&mut self, t: NodeId, _w: Weight) {
        self.direct[t as usize] = true;
    }

    #[inline]
    fn has_direct(&self, t: NodeId) -> bool {
        self.direct[t as usize]
    }

    /// Marks `t` witnessed; returns true when it was not already.
    #[inline]
    fn mark_witnessed(&mut self, t: NodeId) -> bool {
        !std::mem::replace(&mut self.witnessed[t as usize], true)
    }

    #[inline]
    fn is_witnessed(&self, t: NodeId) -> bool {
        self.witnessed[t as usize]
    }
}

/// Bounded multi-target Dijkstra from `source` avoiding `skip` and all contracted
/// vertices, resolving the still-unwitnessed targets registered in `scratch`.
///
/// The global bound is checked **before** a popped vertex is matched against the
/// targets, so the `d > cutoff` semantics are identical for targets and non-targets:
/// once the frontier passes the largest via cutoff, no remaining target can have a
/// witness, and the search stops. A target settled within the bound is a witness iff
/// its distance is `<= ` its own via cutoff (same `<=` rule as the 1-/2-hop passes).
fn witness_search(
    source: NodeId,
    skip: NodeId,
    mut unresolved: usize,
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
) {
    scratch.reset_search();
    scratch.dist[source as usize] = 0;
    scratch.hops[source as usize] = 0;
    scratch.touched.push(source);
    scratch.heap.push(0, source);
    let cutoff = scratch.max_cutoff;
    let mut settled = 0usize;
    while let Some((d, x)) = scratch.heap.pop() {
        if d > scratch.dist[x as usize] {
            continue;
        }
        // Bound check first: beyond the largest via cutoff nothing can be a witness,
        // so a target settled past the bound must not be reported as one.
        if d > cutoff {
            break;
        }
        if scratch.target_cutoff(x).is_some_and(|via| d <= via) && scratch.mark_witnessed(x) {
            unresolved -= 1;
            if unresolved == 0 {
                break;
            }
        }
        settled += 1;
        if settled > config.witness_settle_limit {
            break;
        }
        if config.hop_limit > 0 && scratch.hops[x as usize] >= config.hop_limit as u32 {
            continue;
        }
        for &(t, w) in &adjacency[x as usize] {
            if t == skip || contracted[t as usize] {
                continue;
            }
            let nd = d + w;
            if nd <= cutoff && nd < scratch.dist[t as usize] {
                if scratch.dist[t as usize] == INFINITY {
                    scratch.touched.push(t);
                }
                scratch.dist[t as usize] = nd;
                scratch.hops[t as usize] = scratch.hops[x as usize] + 1;
                scratch.heap.push(nd, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder};
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn distances_match_dijkstra_on_random_networks() {
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(800, 21));
            let g = net.graph(kind);
            let ch = ContractionHierarchy::build(&g);
            let n = g.num_vertices() as NodeId;
            for i in 0..60u32 {
                let s = (i * 131) % n;
                let t = (i * 467 + 11) % n;
                assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t} {kind:?}");
            }
        }
    }

    #[test]
    fn handles_trivial_and_disconnected_graphs() {
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g);
        assert_eq!(ch.distance(0, 2), 7);
        assert_eq!(ch.distance(0, 0), 0);
        assert_eq!(ch.distance(0, 4), INFINITY);
        assert_eq!(ch.num_vertices(), 5);
    }

    #[test]
    fn ranks_form_a_permutation() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(300, 2));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let r = ch.rank(v) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let order = ch.vertices_by_importance();
        assert_eq!(order.len(), g.num_vertices());
        assert_eq!(ch.rank(order[0]) as usize, g.num_vertices() - 1);
    }

    #[test]
    fn shortcut_count_and_memory_reported() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 9));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        assert!(ch.memory_bytes() > 0);
        // Shortcut count should be modest relative to the number of edges on a planar
        // network.
        assert!(ch.num_shortcuts() < g.num_edges() * 4);
    }

    #[test]
    fn hop_limited_witnesses_stay_exact() {
        // Even a 1-hop limit (only direct edges and single-edge Dijkstra steps can
        // certify witnesses) must stay exact — it merely inserts more shortcuts.
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 77));
        let g = net.graph(EdgeWeightKind::Time);
        let tight = ChConfig { hop_limit: 1, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &tight);
        let unlimited = ChConfig { hop_limit: 0, ..ChConfig::default() };
        let ch_unlimited = ContractionHierarchy::build_with_config(&g, &unlimited);
        let n = g.num_vertices() as NodeId;
        for i in 0..50u32 {
            let s = (i * 211) % n;
            let t = (i * 401 + 3) % n;
            let want = dijkstra::distance(&g, s, t);
            assert_eq!(ch.distance(s, t), want, "hop-limited {s}->{t}");
            assert_eq!(ch_unlimited.distance(s, t), want, "unlimited {s}->{t}");
        }
        // Tighter witness passes can only add shortcuts, never remove them.
        assert!(ch.num_shortcuts() >= ch_unlimited.num_shortcuts());
    }

    #[test]
    fn core_contraction_fallback_stays_exact() {
        // A threshold below the planar average degree forces contract-rest-by-rank
        // almost immediately; distances must still be exact.
        let net = RoadNetwork::generate(&GeneratorConfig::new(700, 5));
        let g = net.graph(EdgeWeightKind::Distance);
        let eager = ChConfig { core_degree_threshold: 0.1, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &eager);
        let n = g.num_vertices() as NodeId;
        for i in 0..50u32 {
            let s = (i * 97) % n;
            let t = (i * 307 + 13) % n;
            assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
        // The fallback still assigns every rank exactly once.
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            seen[ch.rank(v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn disabled_fallback_and_tiny_settle_limit_stay_exact() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(400, 31));
        let g = net.graph(EdgeWeightKind::Distance);
        let config =
            ChConfig { witness_settle_limit: 2, core_degree_threshold: 0.0, ..ChConfig::default() };
        let ch = ContractionHierarchy::build_with_config(&g, &config);
        let n = g.num_vertices() as NodeId;
        for i in 0..40u32 {
            let s = (i * 53) % n;
            let t = (i * 173 + 7) % n;
            assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
    }
}
