//! Preprocessing: node ordering and contraction.

use rnknn_graph::{Graph, NodeId, Weight, INFINITY};
use rnknn_pathfinding::heap::MinHeap;

/// Tuning parameters for CH preprocessing.
#[derive(Debug, Clone)]
pub struct ChConfig {
    /// Maximum number of vertices settled by each witness search. Larger values produce
    /// fewer shortcuts at the cost of slower preprocessing; correctness is unaffected
    /// (an inconclusive witness search simply adds the shortcut).
    pub witness_settle_limit: usize,
    /// Weighting of the "deleted neighbours" term in the node priority, which spreads
    /// contraction evenly across the network.
    pub deleted_neighbour_weight: i64,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig { witness_settle_limit: 64, deleted_neighbour_weight: 2 }
    }
}

/// A preprocessed contraction hierarchy over an undirected road network.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// `rank[v]` = contraction position of `v` (higher = more important).
    rank: Vec<u32>,
    /// Upward adjacency in CSR form: for each vertex, edges (original and shortcuts) to
    /// higher-ranked vertices only.
    up_offsets: Vec<u32>,
    up_targets: Vec<NodeId>,
    up_weights: Vec<Weight>,
    /// Total number of shortcuts added during preprocessing (reported by experiments).
    num_shortcuts: usize,
}

impl ContractionHierarchy {
    /// Builds the hierarchy with default parameters.
    pub fn build(graph: &Graph) -> Self {
        Self::build_with_config(graph, &ChConfig::default())
    }

    /// Builds the hierarchy with explicit parameters.
    pub fn build_with_config(graph: &Graph, config: &ChConfig) -> Self {
        let n = graph.num_vertices();
        // Working adjacency among not-yet-contracted vertices. Starts as a copy of the
        // input graph and gains shortcuts as contraction proceeds.
        let mut adjacency: Vec<Vec<(NodeId, Weight)>> =
            (0..n).map(|v| graph.neighbors(v as NodeId).collect::<Vec<_>>()).collect();
        let mut contracted = vec![false; n];
        let mut deleted_neighbours = vec![0i64; n];
        let mut rank = vec![0u32; n];
        let mut num_shortcuts = 0usize;
        let mut scratch = WitnessScratch::new(n);

        // Lazy priority queue of (priority, vertex).
        let mut queue: MinHeap<NodeId, i64> = MinHeap::with_capacity(n);
        for v in 0..n as NodeId {
            let p = node_priority(
                v,
                &adjacency,
                &contracted,
                &deleted_neighbours,
                config,
                &mut scratch,
            );
            queue.push(p, v);
        }

        let mut next_rank = 0u32;
        while let Some((priority, v)) = queue.pop() {
            if contracted[v as usize] {
                continue;
            }
            // Lazy update: recompute the priority; if it is no longer minimal, requeue.
            let current = node_priority(
                v,
                &adjacency,
                &contracted,
                &deleted_neighbours,
                config,
                &mut scratch,
            );
            if current > priority {
                if let Some(next_best) = queue.peek_key() {
                    if current > next_best {
                        queue.push(current, v);
                        continue;
                    }
                }
            }

            // Contract v: connect every pair of its uncontracted neighbours unless a
            // witness path that avoids v is at least as short.
            rank[v as usize] = next_rank;
            next_rank += 1;
            contracted[v as usize] = true;
            let neighbours: Vec<(NodeId, Weight)> = adjacency[v as usize]
                .iter()
                .copied()
                .filter(|&(t, _)| !contracted[t as usize])
                .collect();
            for &(t, _) in &neighbours {
                deleted_neighbours[t as usize] += 1;
                // Prune edges into the contracted core so witness searches and
                // priority estimates only ever scan live vertices. Without this the
                // working lists of late-contracted hubs grow without bound and
                // preprocessing degenerates from seconds to hours on ~10k-vertex
                // networks.
                adjacency[t as usize].retain(|&(x, _)| !contracted[x as usize]);
            }
            let added =
                contract_vertex(v, &neighbours, &mut adjacency, &contracted, config, &mut scratch);
            num_shortcuts += added;
        }

        // Assemble the upward graph: for each vertex keep only edges towards
        // higher-ranked vertices (original edges plus every shortcut accumulated in the
        // working adjacency).
        let mut up_offsets = vec![0u32; n + 1];
        let mut up_targets = Vec::new();
        let mut up_weights = Vec::new();
        for v in 0..n {
            // Deduplicate parallel edges keeping the smallest weight.
            let mut ups: Vec<(NodeId, Weight)> =
                adjacency[v].iter().copied().filter(|&(t, _)| rank[t as usize] > rank[v]).collect();
            ups.sort_unstable_by_key(|&(t, w)| (t, w));
            ups.dedup_by_key(|&mut (t, _)| t);
            for (t, w) in ups {
                up_targets.push(t);
                up_weights.push(w);
            }
            up_offsets[v + 1] = up_targets.len() as u32;
        }

        ContractionHierarchy { rank, up_offsets, up_targets, up_weights, num_shortcuts }
    }

    /// Number of vertices in the hierarchy.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of a vertex (higher = contracted later = more important).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Vertices sorted by decreasing importance (highest rank first).
    pub fn vertices_by_importance(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.rank.len() as NodeId).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(self.rank[v as usize]));
        order
    }

    /// Number of shortcut edges added during preprocessing.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Upward edges (towards higher-ranked vertices) of `v`.
    #[inline]
    pub fn upward_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.up_offsets[v as usize] as usize;
        let hi = self.up_offsets[v as usize + 1] as usize;
        self.up_targets[lo..hi].iter().copied().zip(self.up_weights[lo..hi].iter().copied())
    }

    /// Approximate resident size in bytes (Figure 8(a) / 26(b)).
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.up_offsets.len() * 4
            + self.up_targets.len() * 4
            + self.up_weights.len() * std::mem::size_of::<Weight>()
    }
}

/// Priority of a vertex: edge difference plus a spreading term.
fn node_priority(
    v: NodeId,
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    deleted_neighbours: &[i64],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
) -> i64 {
    let neighbours: Vec<(NodeId, Weight)> =
        adjacency[v as usize].iter().copied().filter(|&(t, _)| !contracted[t as usize]).collect();
    let shortcuts = count_shortcuts(v, &neighbours, adjacency, contracted, config, scratch);
    let edge_difference = shortcuts as i64 - neighbours.len() as i64;
    edge_difference * 4 + deleted_neighbours[v as usize] * config.deleted_neighbour_weight
}

/// Counts how many shortcuts contracting `v` would insert (without inserting them).
fn count_shortcuts(
    v: NodeId,
    neighbours: &[(NodeId, Weight)],
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
) -> usize {
    let mut count = 0;
    for (i, &(u, wu)) in neighbours.iter().enumerate() {
        for &(t, wt) in neighbours.iter().skip(i + 1) {
            let via = wu + wt;
            let query = WitnessQuery { source: u, target: t, skip: v, cutoff: via };
            if witness_distance(query, adjacency, contracted, config, scratch) > via {
                count += 1;
            }
        }
    }
    count
}

/// Contracts `v`, inserting the needed shortcuts into `adjacency`. Returns the number of
/// shortcuts added.
fn contract_vertex(
    v: NodeId,
    neighbours: &[(NodeId, Weight)],
    adjacency: &mut [Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
) -> usize {
    let mut added = 0;
    for (i, &(u, wu)) in neighbours.iter().enumerate() {
        for &(t, wt) in neighbours.iter().skip(i + 1) {
            let via = wu + wt;
            let query = WitnessQuery { source: u, target: t, skip: v, cutoff: via };
            if witness_distance(query, adjacency, contracted, config, scratch) > via {
                if upsert_edge(&mut adjacency[u as usize], t, via) {
                    added += 1;
                }
                upsert_edge(&mut adjacency[t as usize], u, via);
            }
        }
    }
    added
}

/// Inserts edge `(t, w)` or lowers the weight of an existing parallel edge. Returns true
/// when a new edge was inserted. Keeping the working lists free of parallel edges is
/// what keeps witness searches (which scan these lists) fast.
fn upsert_edge(edges: &mut Vec<(NodeId, Weight)>, t: NodeId, w: Weight) -> bool {
    match edges.iter_mut().find(|(x, _)| *x == t) {
        Some(entry) => {
            if w < entry.1 {
                entry.1 = w;
            }
            false
        }
        None => {
            edges.push((t, w));
            true
        }
    }
}

/// Reusable witness-search state: a full-size distance array reset via a touched
/// list, so each search costs no allocations regardless of how many millions of
/// searches preprocessing performs.
struct WitnessScratch {
    dist: Vec<Weight>,
    touched: Vec<NodeId>,
    heap: MinHeap<NodeId>,
}

impl WitnessScratch {
    fn new(n: usize) -> Self {
        WitnessScratch { dist: vec![INFINITY; n], touched: Vec::new(), heap: MinHeap::new() }
    }

    fn reset(&mut self) {
        for &t in &self.touched {
            self.dist[t as usize] = INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// One witness search request: is there a path `source -> target` avoiding `skip`
/// of length at most `cutoff`?
#[derive(Clone, Copy)]
struct WitnessQuery {
    source: NodeId,
    target: NodeId,
    skip: NodeId,
    cutoff: Weight,
}

/// Bounded Dijkstra between two neighbours of the vertex being contracted, avoiding that
/// vertex and all already-contracted vertices. Returns the best distance found within
/// the settle budget (possibly an overestimate, which only causes extra shortcuts).
fn witness_distance(
    query: WitnessQuery,
    adjacency: &[Vec<(NodeId, Weight)>],
    contracted: &[bool],
    config: &ChConfig,
    scratch: &mut WitnessScratch,
) -> Weight {
    let WitnessQuery { source, target, skip, cutoff } = query;
    scratch.reset();
    scratch.heap.push(0, source);
    scratch.dist[source as usize] = 0;
    scratch.touched.push(source);
    let mut settled = 0usize;
    let mut best = INFINITY;
    while let Some((d, x)) = scratch.heap.pop() {
        if d > scratch.dist[x as usize] {
            continue;
        }
        if x == target {
            best = d;
            break;
        }
        if d > cutoff {
            break;
        }
        settled += 1;
        if settled > config.witness_settle_limit {
            break;
        }
        for &(t, w) in &adjacency[x as usize] {
            if t == skip || contracted[t as usize] {
                continue;
            }
            let nd = d + w;
            if nd < scratch.dist[t as usize] {
                if scratch.dist[t as usize] == INFINITY {
                    scratch.touched.push(t);
                }
                scratch.dist[t as usize] = nd;
                scratch.heap.push(nd, t);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder};
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn distances_match_dijkstra_on_random_networks() {
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(800, 21));
            let g = net.graph(kind);
            let ch = ContractionHierarchy::build(&g);
            let n = g.num_vertices() as NodeId;
            for i in 0..60u32 {
                let s = (i * 131) % n;
                let t = (i * 467 + 11) % n;
                assert_eq!(ch.distance(s, t), dijkstra::distance(&g, s, t), "{s}->{t} {kind:?}");
            }
        }
    }

    #[test]
    fn handles_trivial_and_disconnected_graphs() {
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g);
        assert_eq!(ch.distance(0, 2), 7);
        assert_eq!(ch.distance(0, 0), 0);
        assert_eq!(ch.distance(0, 4), INFINITY);
        assert_eq!(ch.num_vertices(), 5);
    }

    #[test]
    fn ranks_form_a_permutation() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(300, 2));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let mut seen = vec![false; g.num_vertices()];
        for v in g.vertices() {
            let r = ch.rank(v) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let order = ch.vertices_by_importance();
        assert_eq!(order.len(), g.num_vertices());
        assert_eq!(ch.rank(order[0]) as usize, g.num_vertices() - 1);
    }

    #[test]
    fn shortcut_count_and_memory_reported() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 9));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        assert!(ch.memory_bytes() > 0);
        // Shortcut count should be modest relative to the number of edges on a planar
        // network.
        assert!(ch.num_shortcuts() < g.num_edges() * 4);
    }
}
