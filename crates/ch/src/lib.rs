//! Contraction Hierarchies (Geisberger et al., WEA 2008).
//!
//! CH is one of the fast point-to-point shortest-path techniques the paper combines
//! with IER (Section 5, Figure 4): vertices are contracted in increasing order of
//! importance, inserting shortcut edges that preserve shortest-path distances among the
//! remaining vertices; queries run a bidirectional Dijkstra that only ever relaxes edges
//! towards more important vertices.
//!
//! Preprocessing scales to continent-style inputs: priorities are cached and
//! invalidated neighbour-only, witness searches run as staged hop-limited passes, and
//! a contract-rest-by-rank fallback guards against pathological dense cores (all
//! tunable via [`ChConfig`]). Queries run on a reusable epoch-tagged scratch with
//! frontier pruning; see [`ContractionHierarchy::distance_with_counters`] and
//! [`ContractionHierarchy::distance_from_space`] (the IER-CH hot path).
//!
//! Besides serving as the IER-CH oracle, the hierarchy's contraction order is reused by
//! the [`rnknn-tnr`](../rnknn_tnr/index.html) crate to select transit nodes and by
//! [`rnknn-phl`](../rnknn_phl/index.html) as a label ordering.

#![forbid(unsafe_code)]

mod build;
pub mod persist;
mod query;

pub use build::{ChConfig, ContractionHierarchy};
pub use query::{ChSearchCounters, ChSearchSpace, ChSpaceProjection};
