//! Artifact save/load for the contraction hierarchy.
//!
//! The CH query state is four flat arrays (rank permutation + upward-CSR
//! offsets/targets/weights) plus two scalars, which is exactly the shape the
//! artifact format stores zero-copy: on load the arrays become
//! [`rnknn_persist::PVec`] views into the mapped file and the query path
//! runs on them unchanged.
//!
//! Structural validation on load covers everything the query code uses as an
//! index: the rank permutation (every value in range — queries only compare
//! ranks, so a permutation check stronger than range is unnecessary, but range
//! is required for `vertices_by_importance`), CSR offset monotonicity/bounds,
//! and target ids. `up_weights` values are used only arithmetically and are
//! covered by the section checksum.

use crate::build::{ChConfig, ContractionHierarchy};
use rnknn_graph::NodeId;
use rnknn_persist::{Artifact, ArtifactWriter, Fingerprint, MetaWriter, PVec, PersistError, Tag};
use std::io::{Seek, Write};

/// CH scalar metadata: vertex count, shortcut count, stall flag, config fingerprint.
pub const TAG_META: Tag = Tag::new(b"CH.META\0");
/// Contraction ranks (`u32`, one per vertex).
pub const TAG_RANK: Tag = Tag::new(b"CH.RANK\0");
/// Upward-CSR offsets (`u32`, `num_vertices + 1` entries).
pub const TAG_UP_OFFSETS: Tag = Tag::new(b"CH.UOFF\0");
/// Upward-CSR targets (`u32`).
pub const TAG_UP_TARGETS: Tag = Tag::new(b"CH.UTGT\0");
/// Upward-CSR weights (`u64`).
pub const TAG_UP_WEIGHTS: Tag = Tag::new(b"CH.UWGT\0");

impl ChConfig {
    /// A stable fingerprint over every field that influences the built
    /// hierarchy. Artifacts store it; loading under a different config is
    /// rejected with [`PersistError::ConfigMismatch`] (a hierarchy built with,
    /// say, a different `hop_limit` is *correct* but not the one the caller
    /// asked for — silently serving it would invalidate benchmarks).
    ///
    /// Every field of [`ChConfig`] participates, including `stall_on_demand`
    /// (stored on the hierarchy and togglable, but part of the requested
    /// build). The field order here is locked by a unit test; extending the
    /// config means extending this list, which deliberately changes the
    /// fingerprint of existing configs.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push_str("ChConfig")
            .push_usize(self.witness_settle_limit)
            .push_i64(self.deleted_neighbour_weight)
            .push_i64(self.level_weight)
            .push_usize(self.hop_limit)
            .push_f64(self.core_degree_threshold)
            .push_i64(self.search_space_weight)
            .push_usize(self.separator_cell_target)
            .push_bool(self.stall_on_demand);
        fp.finish()
    }
}

/// Writes the hierarchy's sections into an open artifact.
pub fn save_ch<W: Write + Seek>(
    ch: &ContractionHierarchy,
    writer: &mut ArtifactWriter<W>,
) -> Result<(), PersistError> {
    let mut meta = MetaWriter::new();
    meta.usize(ch.num_vertices())
        .usize(ch.num_shortcuts)
        .bool(ch.stall_on_demand)
        .u64(ch.config_fingerprint);
    writer.begin_section(TAG_META)?;
    writer.write_u64s(meta.words())?;
    writer.end_section()?;

    writer.begin_section(TAG_RANK)?;
    writer.write_u32s(&ch.rank)?;
    writer.end_section()?;

    writer.begin_section(TAG_UP_OFFSETS)?;
    writer.write_u32s(&ch.up_offsets)?;
    writer.end_section()?;

    writer.begin_section(TAG_UP_TARGETS)?;
    writer.write_u32s(&ch.up_targets)?;
    writer.end_section()?;

    writer.begin_section(TAG_UP_WEIGHTS)?;
    writer.write_u64s(&ch.up_weights)?;
    writer.end_section()?;
    Ok(())
}

/// Whether an artifact contains a CH index.
pub fn has_ch(artifact: &Artifact) -> bool {
    artifact.has(TAG_META)
}

/// Reads and validates the hierarchy from an artifact as zero-copy views.
///
/// `expected_config`, when given, must fingerprint to the stored value.
/// `num_graph_vertices` cross-checks the hierarchy against the graph it will
/// be queried with.
pub fn load_ch(
    artifact: &Artifact,
    num_graph_vertices: usize,
    expected_config: Option<&ChConfig>,
) -> Result<ContractionHierarchy, PersistError> {
    let mut meta = artifact.meta(TAG_META)?;
    let num_vertices = meta.usize()?;
    let num_shortcuts = meta.usize()?;
    let stall_on_demand = meta.bool()?;
    let config_fingerprint = meta.u64()?;
    meta.finish()?;

    if let Some(config) = expected_config {
        let expected = config.fingerprint();
        if expected != config_fingerprint {
            return Err(PersistError::ConfigMismatch {
                index: "ch",
                stored: config_fingerprint,
                expected,
            });
        }
    }
    if num_vertices != num_graph_vertices {
        return Err(PersistError::corrupt(
            "CH.META",
            format!(
                "hierarchy covers {num_vertices} vertices but the graph has \
                 {num_graph_vertices}"
            ),
        ));
    }

    let rank = artifact.u32s(TAG_RANK)?;
    let up_offsets = artifact.u32s(TAG_UP_OFFSETS)?;
    let up_targets = artifact.u32s(TAG_UP_TARGETS)?;
    let up_weights = artifact.u64s(TAG_UP_WEIGHTS)?;

    if rank.len() != num_vertices {
        return Err(PersistError::corrupt(
            "CH.RANK",
            format!("expected {num_vertices} ranks, found {}", rank.len()),
        ));
    }
    if let Some(&bad) = rank.iter().find(|&&r| r as usize >= num_vertices) {
        return Err(PersistError::corrupt(
            "CH.RANK",
            format!("rank {bad} out of range for {num_vertices} vertices"),
        ));
    }
    if up_offsets.len() != num_vertices + 1 {
        return Err(PersistError::corrupt(
            "CH.UOFF",
            format!(
                "expected {} offsets for {num_vertices} vertices, found {}",
                num_vertices + 1,
                up_offsets.len()
            ),
        ));
    }
    if up_offsets.first() != Some(&0) {
        return Err(PersistError::corrupt("CH.UOFF", "offsets[0] is not 0".to_string()));
    }
    if let Some(pos) = up_offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(PersistError::corrupt(
            "CH.UOFF",
            format!("offsets not monotonic at vertex {pos}"),
        ));
    }
    let num_up_edges = *up_offsets.last().unwrap() as usize;
    if up_targets.len() != num_up_edges || up_weights.len() != num_up_edges {
        return Err(PersistError::corrupt(
            "CH.UTGT",
            format!(
                "upward arrays disagree with offsets: {} targets / {} weights vs \
                 {num_up_edges} edges",
                up_targets.len(),
                up_weights.len()
            ),
        ));
    }
    if let Some(&bad) = up_targets.iter().find(|&&t| t as usize >= num_vertices) {
        return Err(PersistError::corrupt(
            "CH.UTGT",
            format!("upward target {bad} out of range for {num_vertices} vertices"),
        ));
    }

    Ok(ContractionHierarchy {
        rank: PVec::from_view(rank),
        up_offsets: PVec::from_view(up_offsets),
        up_targets: PVec::from_view(up_targets),
        up_weights: PVec::from_view(up_weights),
        num_shortcuts,
        stall_on_demand,
        config_fingerprint,
    })
}

// NodeId is the element type of `up_targets`; keep the import honest even
// though it is the same type as u32 today.
const _: fn(NodeId) -> u32 = |v| v;

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::{EdgeWeightKind, GeneratorConfig, RoadNetwork};
    use std::io::Cursor;

    fn sample_ch(size: usize, seed: u64) -> (rnknn_graph::Graph, ContractionHierarchy) {
        let graph = RoadNetwork::generate(&GeneratorConfig::new(size, seed))
            .graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&graph);
        (graph, ch)
    }

    fn save_to_vec(ch: &ContractionHierarchy) -> Vec<u8> {
        let mut w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        save_ch(ch, &mut w).unwrap();
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn ch_round_trips_field_for_field() {
        let (graph, ch) = sample_ch(300, 11);
        let art = Artifact::from_vec(save_to_vec(&ch)).unwrap();
        assert!(has_ch(&art));
        let loaded = load_ch(&art, graph.num_vertices(), Some(&ChConfig::default())).unwrap();
        assert_eq!(&*loaded.rank, &*ch.rank);
        assert_eq!(&*loaded.up_offsets, &*ch.up_offsets);
        assert_eq!(&*loaded.up_targets, &*ch.up_targets);
        assert_eq!(&*loaded.up_weights, &*ch.up_weights);
        assert_eq!(loaded.num_shortcuts(), ch.num_shortcuts());
        assert_eq!(loaded.stall_on_demand(), ch.stall_on_demand());
        assert_eq!(loaded.config_fingerprint(), ch.config_fingerprint());
        assert!(loaded.rank.is_view(), "loaded arrays must be zero-copy views");
        // Distances must agree on a few pairs.
        for (s, t) in [(0u32, 1u32), (5, 250), (17, 123)] {
            assert_eq!(loaded.distance(s, t), ch.distance(s, t));
        }
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let (graph, ch) = sample_ch(120, 5);
        let art = Artifact::from_vec(save_to_vec(&ch)).unwrap();
        let mut other = ChConfig::default();
        other.hop_limit += 1;
        match load_ch(&art, graph.num_vertices(), Some(&other)) {
            Err(PersistError::ConfigMismatch { index, .. }) => assert_eq!(index, "ch"),
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // Without a config constraint the same artifact loads fine.
        assert!(load_ch(&art, graph.num_vertices(), None).is_ok());
    }

    #[test]
    fn vertex_count_mismatch_is_corrupt() {
        let (graph, ch) = sample_ch(120, 5);
        let art = Artifact::from_vec(save_to_vec(&ch)).unwrap();
        assert!(matches!(
            load_ch(&art, graph.num_vertices() + 1, None),
            Err(PersistError::Corrupt { .. })
        ));
    }

    /// Locks the fingerprint inputs: every `ChConfig` field must change the
    /// fingerprint. If a field is added to the config, this test (and the
    /// fingerprint) must be extended — that is the point.
    #[test]
    fn fingerprint_covers_every_field() {
        let base = ChConfig::default().fingerprint();
        let variants: Vec<ChConfig> = vec![
            ChConfig { witness_settle_limit: 257, ..ChConfig::default() },
            ChConfig { deleted_neighbour_weight: 3, ..ChConfig::default() },
            ChConfig { level_weight: 3, ..ChConfig::default() },
            ChConfig { hop_limit: 9, ..ChConfig::default() },
            ChConfig { core_degree_threshold: 41.0, ..ChConfig::default() },
            ChConfig { search_space_weight: 1, ..ChConfig::default() },
            ChConfig { separator_cell_target: 65, ..ChConfig::default() },
            ChConfig { stall_on_demand: false, ..ChConfig::default() },
        ];
        let mut seen = vec![base];
        for v in &variants {
            let fp = v.fingerprint();
            assert!(!seen.contains(&fp), "field change did not change the fingerprint: {v:?}");
            seen.push(fp);
        }
        // And the fingerprint is stable across calls.
        assert_eq!(base, ChConfig::default().fingerprint());
    }
}
