//! CH queries: pruned bidirectional upward search, reusable upward search spaces.
//!
//! All searches run on a thread-local, epoch-tagged scratch (distance array + heap
//! reused across queries), so a query allocates nothing beyond its result and never
//! touches a `HashMap`. [`ContractionHierarchy::distance`] is a bidirectional upward
//! Dijkstra that stops each direction as soon as its frontier minimum reaches the best
//! meet found so far — on road networks that prunes most of the full upward search
//! space. Materialised [`ChSearchSpace`]s remain available for consumers that reuse a
//! space across many queries (IER-CH's forward space, TNR's access-node searches).

use std::cell::RefCell;

use rnknn_graph::{NodeId, Weight, INFINITY};
use rnknn_pathfinding::budget::{QueryBudget, UNLIMITED};
use rnknn_pathfinding::heap::MinHeap;

use crate::build::ContractionHierarchy;

/// Effort counters of one CH search (feeds the engine's unified `QueryStats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChSearchCounters {
    /// Vertices settled across both directions.
    pub settled: u64,
    /// Heap pushes across both directions.
    pub heap_pushes: u64,
    /// Settled vertices whose expansion was skipped by stall-on-demand (their label
    /// was dominated via a higher-ranked neighbour, so no shortest up-down path runs
    /// through them at that distance).
    pub stalled: u64,
}

impl ChSearchCounters {
    /// Accumulates another search's counters into this one.
    pub fn accumulate(&mut self, other: ChSearchCounters) {
        self.settled += other.settled;
        self.heap_pushes += other.heap_pushes;
        self.stalled += other.stalled;
    }
}

/// Reusable per-thread search state. Distance entries are validated by an epoch tag,
/// so "clearing" between queries is one integer increment instead of an O(n) wipe.
/// Each entry packs its distance with its epoch so a label probe — the dominant
/// random access of the memory-bound upward searches — touches one cache line, not
/// two parallel arrays.
struct QueryScratch {
    /// Per direction (0 = forward, 1 = backward): `(tentative distance, epoch)`;
    /// an epoch mismatch means "unvisited this query".
    label: [Vec<(Weight, u32)>; 2],
    heap: [MinHeap<NodeId>; 2],
    /// Neighbour staging buffer for the fused stall-check + relaxation pass:
    /// `(target, tentative distance via x, target's current label)`.
    neighbors: Vec<(NodeId, Weight, Weight)>,
    epoch: u32,
}

impl QueryScratch {
    fn new() -> Self {
        QueryScratch {
            label: [Vec::new(), Vec::new()],
            heap: [MinHeap::new(), MinHeap::new()],
            neighbors: Vec::new(),
            epoch: 0,
        }
    }

    /// Starts a new query over a hierarchy of `n` vertices: grows the arrays if this
    /// thread has only seen smaller hierarchies, and advances the epoch (resetting the
    /// tags on the rare u32 wrap-around).
    fn begin(&mut self, n: usize) {
        for side in 0..2 {
            if self.label[side].len() < n {
                self.label[side].resize(n, (INFINITY, 0));
            }
            self.heap[side].clear();
        }
        if self.epoch == u32::MAX {
            for side in 0..2 {
                self.label[side].iter_mut().for_each(|e| e.1 = 0);
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn get(&self, side: usize, v: NodeId) -> Weight {
        let (d, e) = self.label[side][v as usize];
        if e == self.epoch {
            d
        } else {
            INFINITY
        }
    }

    #[inline]
    fn set(&mut self, side: usize, v: NodeId, d: Weight) {
        self.label[side][v as usize] = (d, self.epoch);
    }
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

const FORWARD: usize = 0;
const BACKWARD: usize = 1;

impl ContractionHierarchy {
    /// Stall-on-demand test for a vertex just popped at distance `d`: when some
    /// upward neighbour `y` already carries a (tentative, hence valid upper-bound)
    /// label with `dist(y) + w(x, y) <= d`, every up-down path through `x` at
    /// distance `d` is dominated by one through `y`, so `x`'s edges need not be
    /// relaxed. Tentative labels suffice for safety — they only ever overestimate,
    /// and the `<=` comparison errs on stalling exactly dominated labels.
    #[inline]
    fn is_stalled(&self, scratch: &QueryScratch, side: usize, x: NodeId, d: Weight) -> bool {
        self.stall_on_demand
            && self.upward_edges(x).any(|(y, w)| {
                let dy = scratch.get(side, y);
                dy != INFINITY && dy + w <= d
            })
    }
    /// Exact network distance between `s` and `t`.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Weight {
        self.distance_with_counters(s, t).0
    }

    /// [`ContractionHierarchy::distance`] plus search-effort counters.
    ///
    /// Runs a bidirectional upward Dijkstra; a direction stops as soon as its frontier
    /// minimum is at least the best meet found so far (every later meet in that
    /// direction would cost at least the frontier minimum), so neither search space is
    /// materialised in full.
    pub fn distance_with_counters(&self, s: NodeId, t: NodeId) -> (Weight, ChSearchCounters) {
        self.distance_budgeted_with_counters(s, t, &UNLIMITED)
    }

    /// [`ContractionHierarchy::distance_with_counters`] honoring a [`QueryBudget`]
    /// (one step per settled vertex; an exhausted budget returns the best meet
    /// found so far, which the caller must treat as truncated via
    /// [`QueryBudget::is_exhausted`]).
    pub fn distance_budgeted_with_counters(
        &self,
        s: NodeId,
        t: NodeId,
        budget: &QueryBudget,
    ) -> (Weight, ChSearchCounters) {
        let mut counters = ChSearchCounters::default();
        if s == t {
            return (0, counters);
        }
        let best = SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.begin(self.num_vertices());
            scratch.set(FORWARD, s, 0);
            scratch.heap[FORWARD].push(0, s);
            scratch.set(BACKWARD, t, 0);
            scratch.heap[BACKWARD].push(0, t);
            counters.heap_pushes += 2;

            let mut best = INFINITY;
            loop {
                // Advance the direction with the smaller frontier, pruning any
                // direction whose frontier minimum can no longer improve the meet.
                let side =
                    match (scratch.heap[FORWARD].peek_key(), scratch.heap[BACKWARD].peek_key()) {
                        (Some(f), Some(b)) => {
                            if f.min(b) >= best {
                                break;
                            }
                            if f <= b {
                                FORWARD
                            } else {
                                BACKWARD
                            }
                        }
                        (Some(f), None) => {
                            if f >= best {
                                break;
                            }
                            FORWARD
                        }
                        (None, Some(b)) => {
                            if b >= best {
                                break;
                            }
                            BACKWARD
                        }
                        (None, None) => break,
                    };
                let Some((d, x)) = scratch.heap[side].pop() else { break };
                if d > scratch.get(side, x) {
                    continue;
                }
                counters.settled += 1;
                if !budget.charge(1) {
                    break;
                }
                let other = scratch.get(1 - side, x);
                if other != INFINITY {
                    best = best.min(d + other);
                }
                // Stall-on-demand: a dominated label cannot start a shortest
                // up-segment, so its edges are never relaxed (the meet update above
                // is still safe — the label is a valid upper bound).
                if self.is_stalled(scratch, side, x, d) {
                    counters.stalled += 1;
                    continue;
                }
                for (y, w) in self.upward_edges(x) {
                    let nd = d + w;
                    // A label at distance >= best can never improve the meet (both
                    // directions only ascend), so don't even push it.
                    if nd < best && nd < scratch.get(side, y) {
                        scratch.set(side, y, nd);
                        scratch.heap[side].push(nd, y);
                        counters.heap_pushes += 1;
                    }
                }
            }
            best
        });
        (best, counters)
    }

    /// Exact network distance from a previously materialised forward space to `t`.
    ///
    /// This is the IER-CH hot path: the query vertex's forward space is computed once
    /// per kNN query, then every candidate object runs only this backward upward
    /// search, pruned against the best meet exactly like
    /// [`ContractionHierarchy::distance_with_counters`].
    pub fn distance_from_space(&self, forward: &ChSearchSpace, t: NodeId) -> Weight {
        self.distance_from_space_with_counters(forward, t).0
    }

    /// [`ContractionHierarchy::distance_from_space`] plus search-effort counters.
    pub fn distance_from_space_with_counters(
        &self,
        forward: &ChSearchSpace,
        t: NodeId,
    ) -> (Weight, ChSearchCounters) {
        self.distance_from_space_within_with_counters(forward, t, INFINITY)
    }

    /// [`ContractionHierarchy::distance_from_space_within_with_counters`] reading the
    /// forward side from a dense [`ChSpaceProjection`] instead of binary-searching the
    /// sorted entry list — every meet test becomes one array load. The projection is
    /// an epoch-tagged n-sized array, affordable only because it is pooled and
    /// re-pointed per query in `O(|space|)`; this is the steady-state IER-CH
    /// candidate loop.
    pub fn distance_from_projection_within_with_counters(
        &self,
        projection: &ChSpaceProjection,
        t: NodeId,
        bound: Weight,
    ) -> (Weight, ChSearchCounters) {
        self.distance_from_projection_within_budgeted_with_counters(
            projection, t, bound, &UNLIMITED,
        )
    }

    /// [`ContractionHierarchy::distance_from_projection_within_with_counters`]
    /// honoring a [`QueryBudget`] (one step per settled vertex; an exhausted budget
    /// saturates the answer to the best meet found so far).
    pub fn distance_from_projection_within_budgeted_with_counters(
        &self,
        projection: &ChSpaceProjection,
        t: NodeId,
        bound: Weight,
        budget: &QueryBudget,
    ) -> (Weight, ChSearchCounters) {
        let mut counters = ChSearchCounters::default();
        if bound == 0 {
            return (bound, counters);
        }
        let best = SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.begin(self.num_vertices());
            scratch.set(BACKWARD, t, 0);
            scratch.heap[BACKWARD].push(0, t);
            counters.heap_pushes += 1;
            let mut best = bound;
            'settle: while let Some((d, x)) = scratch.heap[BACKWARD].pop() {
                if d >= best {
                    break;
                }
                if d > scratch.get(BACKWARD, x) {
                    continue;
                }
                counters.settled += 1;
                if !budget.charge(1) {
                    break;
                }
                let df = projection.get(x);
                if df != INFINITY {
                    best = best.min(df + d);
                }
                // Fused stall-check + relaxation: each upward neighbour's label is
                // probed once (the dominant random access of this memory-bound
                // loop), staged, and either abandoned on a stall or relaxed from
                // the sequential buffer.
                let mut neighbors = std::mem::take(&mut scratch.neighbors);
                neighbors.clear();
                for (y, w) in self.upward_edges(x) {
                    let dy = scratch.get(BACKWARD, y);
                    if self.stall_on_demand && dy != INFINITY && dy + w <= d {
                        counters.stalled += 1;
                        scratch.neighbors = neighbors;
                        continue 'settle;
                    }
                    neighbors.push((y, d + w, dy));
                }
                for &(y, nd, dy) in &neighbors {
                    if nd < best && nd < dy {
                        scratch.set(BACKWARD, y, nd);
                        scratch.heap[BACKWARD].push(nd, y);
                        counters.heap_pushes += 1;
                    }
                }
                scratch.neighbors = neighbors;
            }
            best
        });
        (best, counters)
    }

    /// Bounded variant of [`ContractionHierarchy::distance_from_space_with_counters`]:
    /// exact when the distance is `< bound`, any value `>= bound` otherwise. The
    /// backward search starts with the meet pre-clamped to `bound`, so labels that
    /// cannot produce a path `< bound` are never pushed — IER-CH passes its current
    /// k-th candidate distance here and pays almost nothing for far candidates.
    /// The initialisation is safe for the same reason the evolving-meet pruning is:
    /// a label `>= best` can never improve the meet, whatever `best` started at.
    pub fn distance_from_space_within_with_counters(
        &self,
        forward: &ChSearchSpace,
        t: NodeId,
        bound: Weight,
    ) -> (Weight, ChSearchCounters) {
        self.distance_from_space_within_budgeted_with_counters(forward, t, bound, &UNLIMITED)
    }

    /// [`ContractionHierarchy::distance_from_space_within_with_counters`] honoring
    /// a [`QueryBudget`] (one step per settled vertex).
    pub fn distance_from_space_within_budgeted_with_counters(
        &self,
        forward: &ChSearchSpace,
        t: NodeId,
        bound: Weight,
        budget: &QueryBudget,
    ) -> (Weight, ChSearchCounters) {
        let mut counters = ChSearchCounters::default();
        if bound == 0 {
            return (bound, counters);
        }
        let best = SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.begin(self.num_vertices());
            scratch.set(BACKWARD, t, 0);
            scratch.heap[BACKWARD].push(0, t);
            counters.heap_pushes += 1;
            let mut best = bound;
            while let Some((d, x)) = scratch.heap[BACKWARD].pop() {
                if d >= best {
                    break;
                }
                if d > scratch.get(BACKWARD, x) {
                    continue;
                }
                counters.settled += 1;
                if !budget.charge(1) {
                    break;
                }
                if let Some(df) = forward.distance_to(x) {
                    best = best.min(df + d);
                }
                if self.is_stalled(scratch, BACKWARD, x, d) {
                    counters.stalled += 1;
                    continue;
                }
                for (y, w) in self.upward_edges(x) {
                    let nd = d + w;
                    // A backward label at distance >= best cannot improve the meet.
                    if nd < best && nd < scratch.get(BACKWARD, y) {
                        scratch.set(BACKWARD, y, nd);
                        scratch.heap[BACKWARD].push(nd, y);
                        counters.heap_pushes += 1;
                    }
                }
            }
            best
        });
        (best, counters)
    }

    /// Computes the complete upward search space from `v`: the set of vertices reachable
    /// by only ascending in rank, with their (upper-bound) distances.
    ///
    /// Search spaces can be cached and intersected with [`ChSearchSpace::meet`]; IER-CH
    /// reuses the query vertex's forward space across all candidate objects, which is
    /// the CH analogue of G-tree's "materialization".
    pub fn upward_search_space(&self, v: NodeId) -> ChSearchSpace {
        self.search_space_impl(v, |_| false).0
    }

    /// [`ContractionHierarchy::upward_search_space`] plus search-effort counters, so
    /// callers that account for materialization cost (the IER-CH oracle) report the
    /// same settled/heap-push vocabulary as the pruned searches.
    pub fn upward_search_space_with_counters(
        &self,
        v: NodeId,
    ) -> (ChSearchSpace, ChSearchCounters) {
        self.search_space_impl(v, |_| false)
    }

    /// [`ContractionHierarchy::upward_search_space_with_counters`] writing into a
    /// caller-owned space, reusing its entry buffer. This is the steady-state path of
    /// the IER-CH oracle: the forward space is re-materialised once per kNN query
    /// into the engine's pooled [`ChSearchSpace`], so repeated queries allocate
    /// nothing once the buffer has grown to the workload's largest space.
    pub fn upward_search_space_into(
        &self,
        v: NodeId,
        space: &mut ChSearchSpace,
    ) -> ChSearchCounters {
        self.search_space_into_impl(v, |_| false, false, space, &UNLIMITED)
    }

    /// [`ContractionHierarchy::upward_search_space_into`] with stall-on-demand:
    /// dominated labels are still *recorded* (they are valid upper bounds) but not
    /// *expanded*, which shrinks the materialised space the same way stalling
    /// shrinks the bidirectional search (−27% settled at 69k). Safe for meets
    /// against any upward backward search for the usual stalling reason: a path
    /// through a pruned label is matched by one through the dominating neighbour,
    /// which both sides do explore. This is the pooled IER-CH forward space.
    pub fn upward_search_space_stalled_into(
        &self,
        v: NodeId,
        space: &mut ChSearchSpace,
    ) -> ChSearchCounters {
        self.search_space_into_impl(v, |_| false, self.stall_on_demand, space, &UNLIMITED)
    }

    /// [`ContractionHierarchy::upward_search_space_stalled_into`] honoring a
    /// [`QueryBudget`] (one step per settled vertex; an exhausted budget leaves a
    /// truncated — still sorted — space behind).
    pub fn upward_search_space_stalled_budgeted_into(
        &self,
        v: NodeId,
        space: &mut ChSearchSpace,
        budget: &QueryBudget,
    ) -> ChSearchCounters {
        self.search_space_into_impl(v, |_| false, self.stall_on_demand, space, budget)
    }

    /// [`ContractionHierarchy::upward_search_space_stopping_at`] writing into a
    /// caller-owned space (the TNR per-candidate backward search reuses one buffer
    /// across the whole candidate loop). `stop` must not issue CH queries of its own.
    pub fn upward_search_space_stopping_at_into(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
        space: &mut ChSearchSpace,
    ) -> ChSearchCounters {
        self.search_space_into_impl(v, |x| x != v && stop(x), false, space, &UNLIMITED)
    }

    /// Upward search space from `v` that does not expand any vertex for which `stop`
    /// returns true (the vertex itself is still settled). Used by Transit Node Routing,
    /// whose "local" searches stop at transit nodes.
    ///
    /// `stop` must not issue CH queries of its own (the thread-local search scratch is
    /// held while it runs).
    pub fn upward_search_space_stopping_at(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
    ) -> ChSearchSpace {
        self.search_space_impl(v, |x| x != v && stop(x)).0
    }

    /// [`ContractionHierarchy::upward_search_space_stopping_at`] plus search-effort
    /// counters, so TNR's per-query local searches feed the engine's unified
    /// `QueryStats` like every other CH consumer.
    pub fn upward_search_space_stopping_at_with_counters(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
    ) -> (ChSearchSpace, ChSearchCounters) {
        self.search_space_impl(v, |x| x != v && stop(x))
    }

    /// All-pairs network distances among `vertices` (row-major `len × len` matrix),
    /// via the classic bucket-join many-to-many CH algorithm: materialise every
    /// upward search space once, bucket the entries per graph vertex, and join each
    /// space against the buckets. Cost is `Σ_x fwd(x) · bucket(x)` instead of the
    /// `len²/2 · |space|` of pairwise sorted meets — at thousands of sources
    /// (G-tree's upper-level border matrices) that is orders of magnitude less work.
    ///
    /// The network is undirected, so one space per vertex serves as both the forward
    /// and the backward side and the result is symmetric.
    pub fn many_to_many(&self, vertices: &[NodeId]) -> Vec<Weight> {
        let s = vertices.len();
        let mut out = vec![INFINITY; s * s];
        if s == 0 {
            return out;
        }
        for (i, row) in out.chunks_mut(s).enumerate() {
            row[i] = 0;
        }
        if s < 2 {
            return out;
        }
        let spaces: Vec<ChSearchSpace> =
            vertices.iter().map(|&v| self.upward_search_space(v)).collect();
        // Per-graph-vertex buckets of (source index, upward distance), CSR-packed
        // via a counting pass.
        let n = self.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for space in &spaces {
            for &(x, _) in space.entries() {
                counts[x as usize + 1] += 1;
            }
        }
        for x in 0..n {
            counts[x + 1] += counts[x];
        }
        let total = counts[n] as usize;
        let mut bucket_src = vec![0u32; total];
        let mut bucket_dist = vec![0 as Weight; total];
        let mut cursor = counts.clone();
        for (i, space) in spaces.iter().enumerate() {
            for &(x, d) in space.entries() {
                let slot = cursor[x as usize] as usize;
                bucket_src[slot] = i as u32;
                bucket_dist[slot] = d;
                cursor[x as usize] += 1;
            }
        }
        for (i, space) in spaces.iter().enumerate() {
            let row = i * s;
            for &(x, df) in space.entries() {
                let lo = counts[x as usize] as usize;
                let hi = counts[x as usize + 1] as usize;
                for (slot, &j) in bucket_src[lo..hi].iter().enumerate() {
                    let d = df + bucket_dist[lo + slot];
                    let cell = &mut out[row + j as usize];
                    if d < *cell {
                        *cell = d;
                    }
                }
            }
        }
        out
    }

    fn search_space_impl(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
    ) -> (ChSearchSpace, ChSearchCounters) {
        let mut space = ChSearchSpace::new();
        let counters = self.search_space_into_impl(v, stop, false, &mut space, &UNLIMITED);
        (space, counters)
    }

    fn search_space_into_impl(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
        stall: bool,
        space: &mut ChSearchSpace,
        budget: &QueryBudget,
    ) -> ChSearchCounters {
        let mut counters = ChSearchCounters::default();
        let entries = &mut space.entries;
        entries.clear();
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.begin(self.num_vertices());
            scratch.set(FORWARD, v, 0);
            scratch.heap[FORWARD].push(0, v);
            counters.heap_pushes += 1;
            while let Some((d, x)) = scratch.heap[FORWARD].pop() {
                if d > scratch.get(FORWARD, x) {
                    continue;
                }
                entries.push((x, d));
                if !budget.charge(1) {
                    break;
                }
                if stop(x) {
                    continue;
                }
                if stall && self.is_stalled(scratch, FORWARD, x, d) {
                    counters.stalled += 1;
                    continue;
                }
                for (y, w) in self.upward_edges(x) {
                    let nd = d + w;
                    if nd < scratch.get(FORWARD, y) {
                        scratch.set(FORWARD, y, nd);
                        scratch.heap[FORWARD].push(nd, y);
                        counters.heap_pushes += 1;
                    }
                }
            }
        });
        counters.settled = entries.len() as u64;
        entries.sort_unstable_by_key(|&(x, _)| x);
        counters
    }
}

/// A materialised CH upward search space: vertex ids with upper-bound distances, sorted
/// by vertex id for merge-joins.
#[derive(Debug, Clone, Default)]
pub struct ChSearchSpace {
    entries: Vec<(NodeId, Weight)>,
}

impl ChSearchSpace {
    /// Creates an empty space, ready to be filled by
    /// [`ContractionHierarchy::upward_search_space_into`] (no allocation until then;
    /// the entry buffer is reused across refills).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of settled vertices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty (never the case for spaces produced from a valid vertex).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The settled vertices with their distances, sorted by vertex id.
    pub fn entries(&self) -> &[(NodeId, Weight)] {
        &self.entries
    }

    /// Minimum of `d_self(x) + d_other(x)` over all vertices `x` present in both spaces;
    /// this is the exact network distance when the two spaces come from a forward and a
    /// backward CH search.
    pub fn meet(&self, other: &ChSearchSpace) -> Weight {
        let mut best = INFINITY;
        let mut i = 0;
        let mut j = 0;
        let a = &self.entries;
        let b = &other.entries;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Distance recorded for a specific vertex, if it was settled.
    pub fn distance_to(&self, v: NodeId) -> Option<Weight> {
        self.entries.binary_search_by_key(&v, |&(x, _)| x).ok().map(|i| self.entries[i].1)
    }
}

/// A dense, epoch-tagged projection of one [`ChSearchSpace`] over the vertex set:
/// `get(v)` is one array load instead of a binary search over the sorted entries.
/// Re-pointing the projection at a new space ([`ChSpaceProjection::set_from`]) costs
/// `O(|space|)` — one epoch bump plus one write per entry — so a pooled projection
/// makes the IER-CH candidate loop's meet tests O(1) without ever wiping the
/// n-sized arrays.
#[derive(Debug, Default)]
pub struct ChSpaceProjection {
    /// `(distance, epoch)` per vertex, packed so a probe is one cache line.
    label: Vec<(Weight, u32)>,
    epoch: u32,
}

impl ChSpaceProjection {
    /// Creates an empty projection (no allocation until the first `set_from`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Points the projection at `space` over a graph of `n` vertices: grows the
    /// arrays if needed, bumps the epoch (invalidating the previous space's
    /// entries), and writes the new entries.
    pub fn set_from(&mut self, n: usize, space: &ChSearchSpace) {
        if self.label.len() < n {
            self.label.resize(n, (INFINITY, 0));
        }
        if self.epoch == u32::MAX {
            self.label.iter_mut().for_each(|e| e.1 = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        for &(v, d) in space.entries() {
            self.label[v as usize] = (d, self.epoch);
        }
    }

    /// The projected distance of `v` ([`INFINITY`] when `v` is not in the space).
    #[inline]
    pub fn get(&self, v: NodeId) -> Weight {
        let (d, e) = self.label[v as usize];
        if e == self.epoch {
            d
        } else {
            INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ContractionHierarchy;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::EdgeWeightKind;
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn cached_search_space_reuse_matches_fresh_queries() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 33));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let s: NodeId = 17;
        let space = ch.upward_search_space(s);
        assert!(!space.is_empty());
        assert_eq!(space.distance_to(s), Some(0));
        for t in (0..g.num_vertices() as NodeId).step_by(37) {
            let other = ch.upward_search_space(t);
            assert_eq!(space.meet(&other), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn pruned_bidirectional_distance_matches_full_materialization_meets() {
        // The pruned bidirectional search must produce exactly the meet of the two
        // fully materialised upward spaces — including unreachable pairs.
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(500, 71));
            let g = net.graph(kind);
            let ch = ContractionHierarchy::build(&g);
            let n = g.num_vertices() as NodeId;
            for i in 0..80u32 {
                let s = (i * 379) % n;
                let t = (i * 523 + 7) % n;
                let full = ch.upward_search_space(s).meet(&ch.upward_search_space(t));
                let (pruned, counters) = ch.distance_with_counters(s, t);
                assert_eq!(pruned, full, "{s}->{t} {kind:?}");
                if s != t {
                    assert!(counters.settled > 0);
                    assert!(counters.heap_pushes >= 2);
                }
            }
        }
    }

    #[test]
    fn many_to_many_matches_pairwise_meets() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 8));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let vertices: Vec<NodeId> = (0..g.num_vertices() as NodeId).step_by(29).collect();
        let s = vertices.len();
        let matrix = ch.many_to_many(&vertices);
        for (i, &a) in vertices.iter().enumerate() {
            for (j, &b) in vertices.iter().enumerate() {
                assert_eq!(matrix[i * s + j], dijkstra::distance(&g, a, b), "{a}->{b}");
            }
        }
        // Degenerate inputs return the trivial matrices instead of panicking.
        assert!(ch.many_to_many(&[]).is_empty());
        assert_eq!(ch.many_to_many(&[7]), vec![0]);
    }

    #[test]
    fn distance_from_space_matches_meet() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(700, 12));
        let g = net.graph(EdgeWeightKind::Time);
        let ch = ContractionHierarchy::build(&g);
        let s: NodeId = 41;
        let forward = ch.upward_search_space(s);
        for t in (0..g.num_vertices() as NodeId).step_by(53) {
            let want = forward.meet(&ch.upward_search_space(t));
            let (got, counters) = ch.distance_from_space_with_counters(&forward, t);
            assert_eq!(got, want, "{s}->{t}");
            // The pruned backward search must not settle more than the full backward
            // space would.
            assert!(counters.settled <= ch.upward_search_space(t).len() as u64);
        }
    }

    #[test]
    fn stalled_space_meets_and_projection_queries_stay_exact() {
        // The stall-pruned forward space (dominated labels recorded, not expanded)
        // must still produce exact distances against the stalled, bounded backward
        // searches of the pooled IER-CH path — and it must not be larger than the
        // full space.
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let net = RoadNetwork::generate(&GeneratorConfig::new(800, 64));
            let g = net.graph(kind);
            let ch = ContractionHierarchy::build(&g);
            let n = g.num_vertices() as NodeId;
            let mut space = ChSearchSpace::new();
            let mut projection = ChSpaceProjection::new();
            for s in [2u32, n / 3, n - 7] {
                let stalled = ch.upward_search_space_stalled_into(s, &mut space);
                let full = ch.upward_search_space(s);
                assert!(space.len() <= full.len(), "stalling enlarged the space from {s}");
                assert!(stalled.settled <= full.len() as u64);
                projection.set_from(g.num_vertices(), &space);
                for t in (0..n).step_by(29) {
                    let exact = dijkstra::distance(&g, s, t);
                    let (got, _) =
                        ch.distance_from_projection_within_with_counters(&projection, t, INFINITY);
                    assert_eq!(got, exact, "{s}->{t} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn bounded_distance_from_space_is_exact_below_the_bound() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 52));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let s: NodeId = 11;
        let forward = ch.upward_search_space(s);
        for t in (0..g.num_vertices() as NodeId).step_by(41) {
            let exact = dijkstra::distance(&g, s, t);
            for bound in [0, exact / 2, exact, exact.saturating_add(1), INFINITY] {
                let (got, counters) =
                    ch.distance_from_space_within_with_counters(&forward, t, bound);
                if exact < bound {
                    assert_eq!(got, exact, "{s}->{t} bound={bound}");
                } else {
                    assert!(got >= bound, "{s}->{t} bound={bound} got={got}");
                }
                // A tight bound must never search more than the unbounded query.
                let (_, unbounded) = ch.distance_from_space_with_counters(&forward, t);
                assert!(counters.settled <= unbounded.settled);
            }
        }
    }

    #[test]
    fn space_into_reuses_the_buffer_and_matches_fresh_spaces() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(500, 21));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let mut space = ChSearchSpace::new();
        assert!(space.is_empty());
        for v in (0..g.num_vertices() as NodeId).step_by(31) {
            let counters = ch.upward_search_space_into(v, &mut space);
            let fresh = ch.upward_search_space(v);
            assert_eq!(space.entries(), fresh.entries(), "space from {v}");
            assert_eq!(counters.settled, fresh.len() as u64);
            // The stopping variant agrees with its allocating counterpart too.
            let threshold = (g.num_vertices() as u32 * 9) / 10;
            let mut stopped = ChSearchSpace::new();
            ch.upward_search_space_stopping_at_into(v, |x| ch.rank(x) >= threshold, &mut stopped);
            let stopped_fresh = ch.upward_search_space_stopping_at(v, |x| ch.rank(x) >= threshold);
            assert_eq!(stopped.entries(), stopped_fresh.entries());
        }
    }

    #[test]
    fn stopping_search_space_is_a_subset() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(400, 4));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let full = ch.upward_search_space(5);
        let threshold = (g.num_vertices() as u32 * 9) / 10;
        let stopped = ch.upward_search_space_stopping_at(5, |v| ch.rank(v) >= threshold);
        assert!(stopped.len() <= full.len());
        // Every stopped entry's distance is >= the full space's distance for that vertex.
        for &(v, d) in stopped.entries() {
            let full_d = full.distance_to(v).expect("present in full space");
            assert!(d >= full_d);
        }
    }

    #[test]
    fn scratch_is_reusable_across_hierarchies_of_different_sizes() {
        // The thread-local scratch grows monotonically; interleaving queries against a
        // large and a small hierarchy on the same thread must not leak state.
        let big = RoadNetwork::generate(&GeneratorConfig::new(900, 1));
        let small = RoadNetwork::generate(&GeneratorConfig::new(150, 2));
        let gb = big.graph(EdgeWeightKind::Distance);
        let gs = small.graph(EdgeWeightKind::Distance);
        let chb = ContractionHierarchy::build(&gb);
        let chs = ContractionHierarchy::build(&gs);
        for i in 0..30u32 {
            let sb = (i * 101) % gb.num_vertices() as NodeId;
            let tb = (i * 211 + 5) % gb.num_vertices() as NodeId;
            let ss = (i * 31) % gs.num_vertices() as NodeId;
            let ts = (i * 47 + 3) % gs.num_vertices() as NodeId;
            assert_eq!(chb.distance(sb, tb), dijkstra::distance(&gb, sb, tb));
            assert_eq!(chs.distance(ss, ts), dijkstra::distance(&gs, ss, ts));
        }
    }
}
