//! CH queries: bidirectional upward search, reusable upward search spaces.

use rnknn_graph::{NodeId, Weight, INFINITY};
use rnknn_pathfinding::heap::MinHeap;

use crate::build::ContractionHierarchy;

impl ContractionHierarchy {
    /// Exact network distance between `s` and `t`.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Weight {
        if s == t {
            return 0;
        }
        let forward = self.upward_search_space(s);
        let backward = self.upward_search_space(t);
        forward.meet(&backward)
    }

    /// Computes the complete upward search space from `v`: the set of vertices reachable
    /// by only ascending in rank, with their (upper-bound) distances.
    ///
    /// Search spaces can be cached and intersected with [`ChSearchSpace::meet`]; IER-CH
    /// reuses the query vertex's forward space across all candidate objects, which is
    /// the CH analogue of G-tree's "materialization".
    pub fn upward_search_space(&self, v: NodeId) -> ChSearchSpace {
        let mut entries: Vec<(NodeId, Weight)> = Vec::new();
        let mut heap: MinHeap<NodeId> = MinHeap::new();
        let mut dist: std::collections::HashMap<NodeId, Weight> = std::collections::HashMap::new();
        heap.push(0, v);
        dist.insert(v, 0);
        while let Some((d, x)) = heap.pop() {
            if d > *dist.get(&x).unwrap_or(&INFINITY) {
                continue;
            }
            entries.push((x, d));
            for (t, w) in self.upward_edges(x) {
                let nd = d + w;
                if nd < *dist.get(&t).unwrap_or(&INFINITY) {
                    dist.insert(t, nd);
                    heap.push(nd, t);
                }
            }
        }
        entries.sort_unstable_by_key(|&(x, _)| x);
        ChSearchSpace { entries }
    }

    /// Upward search space from `v` that does not expand any vertex for which `stop`
    /// returns true (the vertex itself is still settled). Used by Transit Node Routing,
    /// whose "local" searches stop at transit nodes.
    pub fn upward_search_space_stopping_at(
        &self,
        v: NodeId,
        stop: impl Fn(NodeId) -> bool,
    ) -> ChSearchSpace {
        let mut entries: Vec<(NodeId, Weight)> = Vec::new();
        let mut heap: MinHeap<NodeId> = MinHeap::new();
        let mut dist: std::collections::HashMap<NodeId, Weight> = std::collections::HashMap::new();
        heap.push(0, v);
        dist.insert(v, 0);
        while let Some((d, x)) = heap.pop() {
            if d > *dist.get(&x).unwrap_or(&INFINITY) {
                continue;
            }
            entries.push((x, d));
            if x != v && stop(x) {
                continue;
            }
            for (t, w) in self.upward_edges(x) {
                let nd = d + w;
                if nd < *dist.get(&t).unwrap_or(&INFINITY) {
                    dist.insert(t, nd);
                    heap.push(nd, t);
                }
            }
        }
        entries.sort_unstable_by_key(|&(x, _)| x);
        ChSearchSpace { entries }
    }
}

/// A materialised CH upward search space: vertex ids with upper-bound distances, sorted
/// by vertex id for merge-joins.
#[derive(Debug, Clone)]
pub struct ChSearchSpace {
    entries: Vec<(NodeId, Weight)>,
}

impl ChSearchSpace {
    /// Number of settled vertices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty (never the case for spaces produced from a valid vertex).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The settled vertices with their distances, sorted by vertex id.
    pub fn entries(&self) -> &[(NodeId, Weight)] {
        &self.entries
    }

    /// Minimum of `d_self(x) + d_other(x)` over all vertices `x` present in both spaces;
    /// this is the exact network distance when the two spaces come from a forward and a
    /// backward CH search.
    pub fn meet(&self, other: &ChSearchSpace) -> Weight {
        let mut best = INFINITY;
        let mut i = 0;
        let mut j = 0;
        let a = &self.entries;
        let b = &other.entries;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Distance recorded for a specific vertex, if it was settled.
    pub fn distance_to(&self, v: NodeId) -> Option<Weight> {
        self.entries.binary_search_by_key(&v, |&(x, _)| x).ok().map(|i| self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ContractionHierarchy;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::EdgeWeightKind;
    use rnknn_pathfinding::dijkstra;

    #[test]
    fn cached_search_space_reuse_matches_fresh_queries() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 33));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let s: NodeId = 17;
        let space = ch.upward_search_space(s);
        assert!(!space.is_empty());
        assert_eq!(space.distance_to(s), Some(0));
        for t in (0..g.num_vertices() as NodeId).step_by(37) {
            let other = ch.upward_search_space(t);
            assert_eq!(space.meet(&other), dijkstra::distance(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn stopping_search_space_is_a_subset() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(400, 4));
        let g = net.graph(EdgeWeightKind::Distance);
        let ch = ContractionHierarchy::build(&g);
        let full = ch.upward_search_space(5);
        let threshold = (g.num_vertices() as u32 * 9) / 10;
        let stopped = ch.upward_search_space_stopping_at(5, |v| ch.rank(v) >= threshold);
        assert!(stopped.len() <= full.len());
        // Every stopped entry's distance is >= the full space's distance for that vertex.
        for &(v, d) in stopped.entries() {
            let full_d = full.distance_to(v).expect("present in full space");
            assert!(d >= full_d);
        }
    }
}
