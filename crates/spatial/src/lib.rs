//! Spatial index substrate: Morton codes, region quadtrees and an R-tree.
//!
//! Three of the paper's methods need planar spatial indexing:
//!
//! * **IER** and the **DB-ENN** variant of Distance Browsing retrieve Euclidean nearest
//!   neighbors incrementally from an R-tree over the object set ([`rtree`]).
//! * **SILC / Distance Browsing** stores, per road-network vertex, a region quadtree of
//!   vertex "colors"; [`quadtree`] provides the Morton-ordered block structure those
//!   quadtrees are built from, and [`morton`] the space-filling-curve arithmetic.

#![forbid(unsafe_code)]

pub mod morton;
pub mod quadtree;
pub mod rtree;

pub use morton::{morton_decode, morton_encode, CoordinateNormalizer};
pub use quadtree::{QuadBlock, RegionQuadtree};
pub use rtree::{BrowserScratch, EuclideanBrowser, RTree, ScratchBrowser};
