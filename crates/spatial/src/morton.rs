//! Morton (Z-order) codes over a normalised 2^16 × 2^16 grid.
//!
//! SILC quadtree blocks are axis-aligned power-of-two squares; representing them as
//! ranges of Morton codes turns "which block contains vertex t?" into a single binary
//! search over a sorted array — the paper's `O(log |V|)` "Morton List" lookup.

use rnknn_graph::{Point, Rect};

/// Number of bits per coordinate axis in the normalised grid.
pub const MORTON_BITS: u32 = 16;

/// Interleaves the low 16 bits of `x` and `y` into a 32-bit Morton code (x in the even
/// bit positions).
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    (spread(x) | (spread(y) << 1)) as u64
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact(code as u32), compact((code >> 1) as u32))
}

#[inline]
fn spread(v: u32) -> u32 {
    let mut v = v & 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    v
}

#[inline]
fn compact(v: u32) -> u32 {
    let mut v = v & 0x55555555;
    v = (v | (v >> 1)) & 0x33333333;
    v = (v | (v >> 2)) & 0x0F0F0F0F;
    v = (v | (v >> 4)) & 0x00FF00FF;
    v = (v | (v >> 8)) & 0x0000FFFF;
    v
}

/// Maps arbitrary planar coordinates onto the normalised Morton grid.
#[derive(Debug, Clone, Copy)]
pub struct CoordinateNormalizer {
    min_x: f64,
    min_y: f64,
    scale: f64,
}

impl CoordinateNormalizer {
    /// Builds a normalizer covering `rect` (typically the graph's bounding rectangle).
    pub fn new(rect: Rect) -> Self {
        let extent = rect.width().max(rect.height()).max(1e-9);
        let cells = (1u32 << MORTON_BITS) as f64;
        CoordinateNormalizer {
            min_x: rect.min_x,
            min_y: rect.min_y,
            // Scale so that the maximum coordinate maps just below 2^16.
            scale: (cells - 1.0) / extent,
        }
    }

    /// Grid cell of a point.
    #[inline]
    pub fn cell(&self, p: Point) -> (u32, u32) {
        let max = (1u32 << MORTON_BITS) - 1;
        let x = ((p.x - self.min_x) * self.scale).round().clamp(0.0, max as f64) as u32;
        let y = ((p.y - self.min_y) * self.scale).round().clamp(0.0, max as f64) as u32;
        (x, y)
    }

    /// Morton code of a point.
    #[inline]
    pub fn code(&self, p: Point) -> u64 {
        let (x, y) = self.cell(p);
        morton_encode(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for &(x, y) in &[(0u32, 0u32), (1, 0), (0, 1), (12345, 54321), (65535, 65535)] {
            let code = morton_encode(x, y);
            assert_eq!(morton_decode(code), (x, y));
        }
    }

    #[test]
    fn z_order_locality_of_quadrants() {
        // All codes in the lower-left quadrant are smaller than any code in the
        // upper-right quadrant.
        let ll = morton_encode(100, 200);
        let ur = morton_encode(40_000, 40_000);
        assert!(ll < ur);
        // Sibling cells within a 2x2 block are consecutive.
        assert_eq!(morton_encode(0, 0) + 1, morton_encode(1, 0));
        assert_eq!(morton_encode(1, 0) + 1, morton_encode(0, 1));
        assert_eq!(morton_encode(0, 1) + 1, morton_encode(1, 1));
    }

    #[test]
    fn normalizer_maps_corners_to_grid_extremes() {
        let rect = Rect { min_x: -50.0, min_y: 10.0, max_x: 150.0, max_y: 210.0 };
        let norm = CoordinateNormalizer::new(rect);
        assert_eq!(norm.cell(Point::new(-50.0, 10.0)), (0, 0));
        let (x, y) = norm.cell(Point::new(150.0, 210.0));
        assert_eq!((x, y), (65535, 65535));
        // Out-of-range points clamp rather than wrap.
        assert_eq!(norm.cell(Point::new(-999.0, -999.0)), (0, 0));
    }
}
