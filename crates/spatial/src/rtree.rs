//! STR bulk-loaded R-tree over points with incremental Euclidean nearest-neighbor
//! browsing.
//!
//! IER (Section 3.2) and the DB-ENN variant of Distance Browsing (Appendix A.1.1)
//! retrieve candidate objects in increasing Euclidean distance order, one at a time,
//! suspending and resuming the search between candidates. [`EuclideanBrowser`]
//! implements that incremental best-first traversal; [`RTree::knn`] is the one-shot
//! variant used to seed IER's initial candidate set.

use rnknn_graph::{Point, Rect};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default R-tree node capacity. The paper tunes node capacity for best Euclidean kNN
/// performance; 16 is a good default for point data in memory.
pub const DEFAULT_NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    /// Child node indices for internal nodes; empty for leaves.
    children: Vec<u32>,
    /// Entry indices for leaf nodes; empty for internal nodes.
    entries: Vec<u32>,
}

/// A bulk-loaded R-tree over `(Point, payload)` entries that also supports
/// incremental [`RTree::insert`] / [`RTree::remove`] for live-object workloads.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: u32,
    points: Vec<Point>,
    payloads: Vec<u32>,
    node_capacity: usize,
    /// Entry slots freed by `remove`, reused by `insert`.
    free: Vec<u32>,
    /// Number of live entries (`points.len()` minus free slots).
    active: usize,
}

impl RTree {
    /// Bulk loads an R-tree with the Sort-Tile-Recursive algorithm using the default
    /// node capacity.
    pub fn bulk_load(entries: &[(Point, u32)]) -> RTree {
        Self::bulk_load_with_capacity(entries, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk loads with an explicit node capacity (Figure 18 tunes this parameter).
    pub fn bulk_load_with_capacity(entries: &[(Point, u32)], node_capacity: usize) -> RTree {
        let node_capacity = node_capacity.max(2);
        let points: Vec<Point> = entries.iter().map(|e| e.0).collect();
        let payloads: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let mut nodes: Vec<Node> = Vec::new();

        if entries.is_empty() {
            nodes.push(Node { rect: Rect::empty(), children: Vec::new(), entries: Vec::new() });
            return RTree {
                nodes,
                root: 0,
                points,
                payloads,
                node_capacity,
                free: Vec::new(),
                active: 0,
            };
        }

        // --- Leaf level via STR tiling ---
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by(|&a, &b| {
            points[a as usize].x.partial_cmp(&points[b as usize].x).unwrap_or(Ordering::Equal)
        });
        let leaf_count = entries.len().div_ceil(node_capacity);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = entries.len().div_ceil(slices.max(1));
        let mut leaves: Vec<u32> = Vec::new();
        for slice in order.chunks(slice_size.max(1)) {
            let mut slice: Vec<u32> = slice.to_vec();
            slice.sort_by(|&a, &b| {
                points[a as usize].y.partial_cmp(&points[b as usize].y).unwrap_or(Ordering::Equal)
            });
            for group in slice.chunks(node_capacity) {
                let mut rect = Rect::empty();
                for &e in group {
                    rect.expand_point(points[e as usize]);
                }
                nodes.push(Node { rect, children: Vec::new(), entries: group.to_vec() });
                leaves.push(nodes.len() as u32 - 1);
            }
        }

        // --- Internal levels: repeatedly pack node rectangles with STR ---
        let mut level = leaves;
        while level.len() > 1 {
            let mut order: Vec<u32> = level.clone();
            order.sort_by(|&a, &b| {
                center_x(&nodes[a as usize].rect)
                    .partial_cmp(&center_x(&nodes[b as usize].rect))
                    .unwrap_or(Ordering::Equal)
            });
            let parent_count = order.len().div_ceil(node_capacity);
            let slices = (parent_count as f64).sqrt().ceil() as usize;
            let slice_size = order.len().div_ceil(slices.max(1));
            let mut next_level = Vec::new();
            for slice in order.chunks(slice_size.max(1)) {
                let mut slice: Vec<u32> = slice.to_vec();
                slice.sort_by(|&a, &b| {
                    center_y(&nodes[a as usize].rect)
                        .partial_cmp(&center_y(&nodes[b as usize].rect))
                        .unwrap_or(Ordering::Equal)
                });
                for group in slice.chunks(node_capacity) {
                    let mut rect = Rect::empty();
                    for &c in group {
                        rect.expand_rect(&nodes[c as usize].rect);
                    }
                    nodes.push(Node { rect, children: group.to_vec(), entries: Vec::new() });
                    next_level.push(nodes.len() as u32 - 1);
                }
            }
            level = next_level;
        }
        let root = level[0];
        let active = points.len();
        RTree { nodes, root, points, payloads, node_capacity, free: Vec::new(), active }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.active
    }

    /// True when the tree indexes no entries.
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    /// Inserts one entry incrementally (Guttman insert: descend by least area
    /// enlargement, split overflowing nodes on the way back up). The caller is
    /// responsible for not inserting a payload twice — the object-set layer
    /// guards membership.
    pub fn insert(&mut self, point: Point, payload: u32) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.points[slot as usize] = point;
                self.payloads[slot as usize] = payload;
                slot
            }
            None => {
                self.points.push(point);
                self.payloads.push(payload);
                (self.points.len() - 1) as u32
            }
        };
        self.active += 1;
        if let Some(sibling) = self.insert_rec(self.root, slot) {
            // The root split: grow the tree by one level.
            let mut rect = self.nodes[self.root as usize].rect;
            rect.expand_rect(&self.nodes[sibling as usize].rect);
            self.nodes.push(Node { rect, children: vec![self.root, sibling], entries: Vec::new() });
            self.root = self.nodes.len() as u32 - 1;
        }
    }

    /// Removes the entry `(point, payload)` incrementally, returning whether it was
    /// present. Bounding rectangles along the path are recomputed exactly; freed
    /// entry slots are reused by later inserts, and once more slots are dead than
    /// alive the tree compacts itself with a fresh bulk load.
    pub fn remove(&mut self, point: Point, payload: u32) -> bool {
        if self.active == 0 {
            return false;
        }
        if !self.remove_rec(self.root, point, payload) {
            return false;
        }
        self.active -= 1;
        // Collapse a root that shrank to a single internal child.
        loop {
            let r = &self.nodes[self.root as usize];
            if r.entries.is_empty() && r.children.len() == 1 {
                self.root = r.children[0];
            } else {
                break;
            }
        }
        // Compact when the dead slots (and the orphaned nodes deletions leave
        // behind) outnumber the live entries.
        if self.free.len() > 64 && self.free.len() > self.active {
            let mut dead = vec![false; self.points.len()];
            for &f in &self.free {
                dead[f as usize] = true;
            }
            let live: Vec<(Point, u32)> = (0..self.points.len())
                .filter(|&i| !dead[i])
                .map(|i| (self.points[i], self.payloads[i]))
                .collect();
            *self = RTree::bulk_load_with_capacity(&live, self.node_capacity);
        }
        true
    }

    fn insert_rec(&mut self, node: u32, slot: u32) -> Option<u32> {
        let point = self.points[slot as usize];
        if self.nodes[node as usize].children.is_empty() {
            let n = &mut self.nodes[node as usize];
            n.rect.expand_point(point);
            n.entries.push(slot);
            let overflow = n.entries.len() > self.node_capacity;
            return overflow.then(|| self.split_leaf(node));
        }
        // Choose the child needing the least area enlargement (ties: smaller area).
        let mut best = 0usize;
        let mut best_enlargement = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, &c) in self.nodes[node as usize].children.iter().enumerate() {
            let rect = self.nodes[c as usize].rect;
            let area = rect.area();
            let mut grown = rect;
            grown.expand_point(point);
            let enlargement = grown.area() - area;
            if enlargement < best_enlargement
                || (enlargement == best_enlargement && area < best_area)
            {
                best = i;
                best_enlargement = enlargement;
                best_area = area;
            }
        }
        let child = self.nodes[node as usize].children[best];
        let split = self.insert_rec(child, slot);
        match split {
            Some(sibling) => {
                self.nodes[node as usize].children.push(sibling);
                self.refit_internal_rect(node);
                (self.nodes[node as usize].children.len() > self.node_capacity)
                    .then(|| self.split_internal(node))
            }
            None => {
                self.nodes[node as usize].rect.expand_point(point);
                None
            }
        }
    }

    /// Splits an overflowing leaf along the longer rect axis; returns the new sibling.
    fn split_leaf(&mut self, node: u32) -> u32 {
        let mut entries = std::mem::take(&mut self.nodes[node as usize].entries);
        let by_x =
            self.nodes[node as usize].rect.width() >= self.nodes[node as usize].rect.height();
        entries.sort_by(|&a, &b| {
            let (pa, pb) = (self.points[a as usize], self.points[b as usize]);
            let (ka, kb) = if by_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
            ka.partial_cmp(&kb).unwrap_or(Ordering::Equal)
        });
        let right = entries.split_off(entries.len() / 2);
        let mut left_rect = Rect::empty();
        for &e in &entries {
            left_rect.expand_point(self.points[e as usize]);
        }
        let mut right_rect = Rect::empty();
        for &e in &right {
            right_rect.expand_point(self.points[e as usize]);
        }
        let n = &mut self.nodes[node as usize];
        n.entries = entries;
        n.rect = left_rect;
        self.nodes.push(Node { rect: right_rect, children: Vec::new(), entries: right });
        self.nodes.len() as u32 - 1
    }

    /// Splits an overflowing internal node along the longer rect axis.
    fn split_internal(&mut self, node: u32) -> u32 {
        let mut children = std::mem::take(&mut self.nodes[node as usize].children);
        let by_x =
            self.nodes[node as usize].rect.width() >= self.nodes[node as usize].rect.height();
        children.sort_by(|&a, &b| {
            let (ra, rb) = (&self.nodes[a as usize].rect, &self.nodes[b as usize].rect);
            let (ka, kb) =
                if by_x { (center_x(ra), center_x(rb)) } else { (center_y(ra), center_y(rb)) };
            ka.partial_cmp(&kb).unwrap_or(Ordering::Equal)
        });
        let right = children.split_off(children.len() / 2);
        let mut left_rect = Rect::empty();
        for &c in &children {
            left_rect.expand_rect(&self.nodes[c as usize].rect);
        }
        let mut right_rect = Rect::empty();
        for &c in &right {
            right_rect.expand_rect(&self.nodes[c as usize].rect);
        }
        let n = &mut self.nodes[node as usize];
        n.children = children;
        n.rect = left_rect;
        self.nodes.push(Node { rect: right_rect, children: right, entries: Vec::new() });
        self.nodes.len() as u32 - 1
    }

    fn refit_internal_rect(&mut self, node: u32) {
        let mut rect = Rect::empty();
        for i in 0..self.nodes[node as usize].children.len() {
            let c = self.nodes[node as usize].children[i];
            rect.expand_rect(&self.nodes[c as usize].rect);
        }
        self.nodes[node as usize].rect = rect;
    }

    fn remove_rec(&mut self, node: u32, point: Point, payload: u32) -> bool {
        if self.nodes[node as usize].children.is_empty() {
            let pos = self.nodes[node as usize].entries.iter().position(|&e| {
                self.payloads[e as usize] == payload
                    && self.points[e as usize].x == point.x
                    && self.points[e as usize].y == point.y
            });
            let Some(pos) = pos else { return false };
            let slot = self.nodes[node as usize].entries.swap_remove(pos);
            self.free.push(slot);
            let mut rect = Rect::empty();
            for &e in &self.nodes[node as usize].entries {
                rect.expand_point(self.points[e as usize]);
            }
            self.nodes[node as usize].rect = rect;
            return true;
        }
        for i in 0..self.nodes[node as usize].children.len() {
            let c = self.nodes[node as usize].children[i];
            if !self.nodes[c as usize].rect.contains(point) {
                continue;
            }
            if self.remove_rec(c, point, payload) {
                let child = &self.nodes[c as usize];
                if child.entries.is_empty() && child.children.is_empty() {
                    // Drop the emptied child (the node itself is orphaned until the
                    // next compaction).
                    self.nodes[node as usize].children.swap_remove(i);
                }
                self.refit_internal_rect(node);
                return true;
            }
        }
        false
    }

    /// Node capacity the tree was built with.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// Approximate resident size in bytes (reported by the object-index experiments,
    /// Figure 18(a)).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.points.len() * std::mem::size_of::<Point>()
            + self.payloads.len() * std::mem::size_of::<u32>()
            + self.free.len() * std::mem::size_of::<u32>();
        for n in &self.nodes {
            bytes += std::mem::size_of::<Node>()
                + n.children.len() * std::mem::size_of::<u32>()
                + n.entries.len() * std::mem::size_of::<u32>();
        }
        bytes
    }

    /// The `k` entries nearest to `query` in Euclidean distance, as
    /// `(euclidean_distance, payload)` pairs in increasing distance order.
    pub fn knn(&self, query: Point, k: usize) -> Vec<(f64, u32)> {
        self.browse(query).take(k).collect()
    }

    /// Starts an incremental nearest-neighbor browse from `query`.
    pub fn browse(&self, query: Point) -> EuclideanBrowser<'_> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(HeapEntry {
                distance: self.nodes[self.root as usize].rect.min_distance(query),
                kind: EntryKind::Node(self.root),
            });
        }
        EuclideanBrowser { tree: self, query, heap }
    }

    /// [`RTree::browse`] running on a reusable [`BrowserScratch`]: the traversal heap
    /// is borrowed from `scratch` instead of freshly allocated, so repeated browses
    /// (one per kNN query) allocate nothing once the heap has grown to the workload's
    /// frontier size.
    pub fn browse_in<'t, 's>(
        &'t self,
        query: Point,
        scratch: &'s mut BrowserScratch,
    ) -> ScratchBrowser<'t, 's> {
        scratch.heap.clear();
        if !self.is_empty() {
            scratch.heap.push(HeapEntry {
                distance: self.nodes[self.root as usize].rect.min_distance(query),
                kind: EntryKind::Node(self.root),
            });
        }
        ScratchBrowser { tree: self, query, heap: &mut scratch.heap }
    }

    /// All entries within `radius` of `query` (used by tests and the object generators).
    pub fn within_radius(&self, query: Point, radius: f64) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        for item in self.browse(query) {
            if item.0 > radius {
                break;
            }
            out.push(item);
        }
        out
    }
}

fn center_x(r: &Rect) -> f64 {
    (r.min_x + r.max_x) * 0.5
}

fn center_y(r: &Rect) -> f64 {
    (r.min_y + r.max_y) * 0.5
}

#[derive(Debug, Clone, Copy)]
enum EntryKind {
    Node(u32),
    Entry(u32),
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    distance: f64,
    kind: EntryKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need the minimum distance first.
        other.distance.partial_cmp(&self.distance).unwrap_or(Ordering::Equal)
    }
}

/// Incremental best-first Euclidean nearest-neighbor iterator over an [`RTree`].
///
/// Yields `(euclidean_distance, payload)` in non-decreasing distance order; the
/// traversal state persists between `next` calls so IER can suspend and resume it.
#[derive(Debug, Clone)]
pub struct EuclideanBrowser<'a> {
    tree: &'a RTree,
    query: Point,
    heap: BinaryHeap<HeapEntry>,
}

impl<'a> EuclideanBrowser<'a> {
    /// Lower bound on the Euclidean distance of the *next* entry this browser will
    /// yield, or `None` when exhausted. DB-ENN uses this to interleave Euclidean
    /// candidates with interval refinements.
    pub fn peek_distance(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.distance)
    }
}

impl<'a> Iterator for EuclideanBrowser<'a> {
    type Item = (f64, u32);

    fn next(&mut self) -> Option<Self::Item> {
        browse_step(self.tree, self.query, &mut self.heap)
    }
}

/// Reusable storage for a [`ScratchBrowser`]: the best-first traversal heap, kept
/// alive across browses so the per-query browse allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct BrowserScratch {
    heap: BinaryHeap<HeapEntry>,
}

impl BrowserScratch {
    /// Creates an empty scratch (no allocation until the first browse).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops any queued traversal state, keeping the heap's capacity. Browses
    /// re-arm the heap themselves; this exists so a pool owner can invalidate
    /// state derived from an R-tree that no longer exists.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// [`EuclideanBrowser`] over a borrowed [`BrowserScratch`] heap: identical traversal,
/// no per-browse allocation.
#[derive(Debug)]
pub struct ScratchBrowser<'t, 's> {
    tree: &'t RTree,
    query: Point,
    heap: &'s mut BinaryHeap<HeapEntry>,
}

impl<'t, 's> ScratchBrowser<'t, 's> {
    /// Lower bound on the Euclidean distance of the *next* entry this browser will
    /// yield, or `None` when exhausted (see [`EuclideanBrowser::peek_distance`]).
    pub fn peek_distance(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.distance)
    }
}

impl<'t, 's> Iterator for ScratchBrowser<'t, 's> {
    type Item = (f64, u32);

    fn next(&mut self) -> Option<Self::Item> {
        browse_step(self.tree, self.query, self.heap)
    }
}

/// One step of the shared best-first traversal: pops until an entry surfaces,
/// expanding nodes into the heap along the way.
fn browse_step(tree: &RTree, query: Point, heap: &mut BinaryHeap<HeapEntry>) -> Option<(f64, u32)> {
    while let Some(HeapEntry { distance, kind }) = heap.pop() {
        match kind {
            EntryKind::Entry(e) => {
                return Some((distance, tree.payloads[e as usize]));
            }
            EntryKind::Node(n) => {
                let node = &tree.nodes[n as usize];
                for &c in &node.children {
                    heap.push(HeapEntry {
                        distance: tree.nodes[c as usize].rect.min_distance(query),
                        kind: EntryKind::Node(c),
                    });
                }
                for &e in &node.entries {
                    heap.push(HeapEntry {
                        distance: tree.points[e as usize].distance(&query),
                        kind: EntryKind::Entry(e),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scattered_points(n: usize) -> Vec<(Point, u32)> {
        (0..n)
            .map(|i| {
                let x = ((i * 7919) % 1000) as f64;
                let y = ((i * 104729) % 1000) as f64;
                (Point::new(x, y), i as u32)
            })
            .collect()
    }

    fn brute_force_knn(entries: &[(Point, u32)], q: Point, k: usize) -> Vec<(f64, u32)> {
        let mut v: Vec<(f64, u32)> = entries.iter().map(|&(p, id)| (p.distance(&q), id)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn knn_matches_brute_force() {
        let entries = scattered_points(500);
        let tree = RTree::bulk_load(&entries);
        for q in [Point::new(0.0, 0.0), Point::new(500.0, 500.0), Point::new(999.0, 1.0)] {
            let got = tree.knn(q, 10);
            let want = brute_force_knn(&entries, q, 10);
            let got_d: Vec<f64> = got.iter().map(|e| e.0).collect();
            let want_d: Vec<f64> = want.iter().map(|e| e.0).collect();
            for (a, b) in got_d.iter().zip(want_d.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn browser_yields_nondecreasing_distances_and_all_entries() {
        let entries = scattered_points(300);
        let tree = RTree::bulk_load(&entries);
        let mut prev = 0.0;
        let mut count = 0;
        for (d, _) in tree.browse(Point::new(123.0, 456.0)) {
            assert!(d >= prev - 1e-12);
            prev = d;
            count += 1;
        }
        assert_eq!(count, entries.len());
    }

    #[test]
    fn browser_peek_matches_next() {
        let entries = scattered_points(50);
        let tree = RTree::bulk_load(&entries);
        let mut browser = tree.browse(Point::new(10.0, 10.0));
        // peek is a lower bound on (and after node expansion equals) the next distance.
        let peek = browser.peek_distance().unwrap();
        let (next, _) = browser.next().unwrap();
        assert!(peek <= next + 1e-12);
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = RTree::bulk_load(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.knn(Point::new(0.0, 0.0), 5), vec![]);
        assert_eq!(tree.browse(Point::new(0.0, 0.0)).next(), None);
        let mut scratch = BrowserScratch::new();
        assert_eq!(tree.browse_in(Point::new(0.0, 0.0), &mut scratch).next(), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn scratch_browser_matches_owning_browser_across_reuses() {
        let entries = scattered_points(300);
        let tree = RTree::bulk_load(&entries);
        let mut scratch = BrowserScratch::new();
        for q in [Point::new(123.0, 456.0), Point::new(0.0, 999.0), Point::new(500.0, 1.0)] {
            let owning: Vec<(f64, u32)> = tree.browse(q).collect();
            let mut reused = tree.browse_in(q, &mut scratch);
            let peek = reused.peek_distance();
            let pooled: Vec<(f64, u32)> = reused.by_ref().collect();
            assert_eq!(pooled.len(), owning.len());
            for (a, b) in pooled.iter().zip(owning.iter()) {
                assert!((a.0 - b.0).abs() < 1e-12);
            }
            assert!(peek.unwrap() <= pooled[0].0 + 1e-12);
        }
    }

    #[test]
    fn single_entry_and_duplicate_points() {
        let entries =
            vec![(Point::new(5.0, 5.0), 1), (Point::new(5.0, 5.0), 2), (Point::new(6.0, 5.0), 3)];
        let tree = RTree::bulk_load(&entries);
        let knn = tree.knn(Point::new(5.0, 5.0), 2);
        assert_eq!(knn.len(), 2);
        assert!(knn.iter().all(|&(d, _)| d < 1e-9));
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn within_radius_filters_correctly() {
        let entries = scattered_points(200);
        let tree = RTree::bulk_load(&entries);
        let q = Point::new(500.0, 500.0);
        let within = tree.within_radius(q, 100.0);
        let brute: Vec<u32> =
            entries.iter().filter(|(p, _)| p.distance(&q) <= 100.0).map(|&(_, id)| id).collect();
        assert_eq!(within.len(), brute.len());
        assert!(within.iter().all(|&(d, _)| d <= 100.0));
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn various_node_capacities_agree() {
        let entries = scattered_points(257);
        let q = Point::new(42.0, 777.0);
        let reference = RTree::bulk_load_with_capacity(&entries, 4).knn(q, 15);
        for cap in [2, 8, 32, 128] {
            let got = RTree::bulk_load_with_capacity(&entries, cap).knn(q, 15);
            let a: Vec<f64> = reference.iter().map(|e| e.0).collect();
            let b: Vec<f64> = got.iter().map(|e| e.0).collect();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn memory_accounting_scales_with_entries() {
        let small = RTree::bulk_load(&scattered_points(10));
        let large = RTree::bulk_load(&scattered_points(1000));
        assert!(large.memory_bytes() > small.memory_bytes());
        assert_eq!(large.node_capacity(), DEFAULT_NODE_CAPACITY);
    }

    /// Randomized churn: interleaved inserts and removes must keep the tree exactly
    /// equal (in kNN answers and cardinality) to a brute-force live-entry list.
    #[test]
    #[cfg_attr(miri, ignore = "large input; Miri covers the sized-down stress tests")]
    fn incremental_insert_remove_matches_brute_force_under_churn() {
        let pool = scattered_points(400);
        for cap in [4usize, 16] {
            let mut tree = RTree::bulk_load_with_capacity(&pool[..100], cap);
            let mut live: Vec<(Point, u32)> = pool[..100].to_vec();
            let mut state = 0x9E3779B97F4A7C15u64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for step in 0..600 {
                if (rng() % 2 == 0 && !live.is_empty()) || live.len() >= pool.len() {
                    let at = (rng() as usize) % live.len();
                    let (p, id) = live.swap_remove(at);
                    assert!(tree.remove(p, id), "step {step}: remove of live entry failed");
                    assert!(!tree.remove(p, id), "step {step}: double remove succeeded");
                } else {
                    let candidate = pool[(rng() as usize) % pool.len()];
                    if live.iter().any(|&(_, id)| id == candidate.1) {
                        continue;
                    }
                    tree.insert(candidate.0, candidate.1);
                    live.push(candidate);
                }
                assert_eq!(tree.len(), live.len());
                if step % 20 == 0 {
                    let q = Point::new((rng() % 1000) as f64, (rng() % 1000) as f64);
                    let got = tree.knn(q, 7.min(live.len()));
                    let want = brute_force_knn(&live, q, 7);
                    for (a, b) in got.iter().zip(want.iter()) {
                        assert!((a.0 - b.0).abs() < 1e-9, "step {step}: knn diverged");
                    }
                    // A full browse still yields every live entry exactly once.
                    let mut seen: Vec<u32> = tree.browse(q).map(|(_, id)| id).collect();
                    seen.sort_unstable();
                    let mut expect: Vec<u32> = live.iter().map(|&(_, id)| id).collect();
                    expect.sort_unstable();
                    assert_eq!(seen, expect, "step {step}: browse lost entries");
                }
            }
        }
    }

    #[test]
    fn insert_grows_an_empty_tree_and_remove_drains_it() {
        let mut tree = RTree::bulk_load(&[]);
        assert!(tree.is_empty());
        for (i, (p, id)) in scattered_points(80).into_iter().enumerate() {
            tree.insert(p, id);
            assert_eq!(tree.len(), i + 1);
        }
        let q = Point::new(1.0, 2.0);
        assert_eq!(tree.knn(q, 80).len(), 80);
        for (p, id) in scattered_points(80) {
            assert!(tree.remove(p, id));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.browse(q).next(), None);
        // Removing from the drained tree is a no-op, and it can be refilled.
        assert!(!tree.remove(q, 0));
        tree.insert(q, 7);
        assert_eq!(tree.knn(q, 1), vec![(0.0, 7)]);
    }

    /// Randomized free-list stress against a reference model: across heavy
    /// insert/remove/reinsert churn (including the compaction rebuild), a
    /// reused entry slot must never alias a live entry — the browser yields
    /// exactly the live payload set, each exactly once, at its current point.
    ///
    /// Sized down under Miri (which runs this test in CI) so the interpreter
    /// finishes quickly; the drain phase still crosses the compaction
    /// threshold in both configurations.
    #[test]
    fn free_list_reuse_never_aliases_live_entries() {
        const OPS: usize = if cfg!(miri) { 260 } else { 4_000 };
        const CHECK_EVERY: usize = if cfg!(miri) { 16 } else { 64 };
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        // Reference model: the live entries, exactly.
        let mut live: Vec<(Point, u32)> = Vec::new();
        let mut next_id = 0u32;
        let mut tree = RTree::bulk_load(&[]);

        let verify = |tree: &RTree, live: &[(Point, u32)]| {
            assert_eq!(tree.len(), live.len());
            let mut seen = std::collections::BTreeMap::new();
            for (d, id) in tree.browse(Point::new(0.0, 0.0)) {
                assert!(d.is_finite());
                *seen.entry(id).or_insert(0u32) += 1;
            }
            assert_eq!(seen.len(), live.len(), "browser lost or duplicated payloads");
            for &(_, id) in live {
                assert_eq!(seen.get(&id), Some(&1), "payload {id} not yielded exactly once");
            }
            // Spot-check (full scans are quadratic): sampled entries must be
            // findable at their *current* model point — knn at the exact
            // location returns distance 0 for them.
            for &(p, id) in live.iter().step_by(1 + live.len() / 48) {
                assert!(
                    tree.knn(p, tree.len()).iter().any(|&(d, got)| got == id && d.abs() < 1e-12),
                    "payload {id} not at its model point (slot aliased?)"
                );
            }
        };

        // Grow-heavy first, then remove-heavy: the shrinking phase leaves far
        // more dead slots than live entries, forcing the compaction rebuild,
        // while continuous reinsertion keeps recycling freed slots throughout.
        for op in 0..OPS {
            let grow_pct = if op < 2 * OPS / 5 { 80 } else { 30 };
            let grow = live.len() < 8 || rng() % 100 < grow_pct;
            if grow {
                let p = Point::new((rng() % 1000) as f64, (rng() % 1000) as f64);
                tree.insert(p, next_id);
                live.push((p, next_id));
                next_id += 1;
            } else {
                let idx = (rng() as usize) % live.len();
                let (p, id) = live.swap_remove(idx);
                assert!(tree.remove(p, id), "op {op}: live entry missing from tree");
                assert!(!tree.remove(p, id), "op {op}: double remove succeeded");
            }
            if op % CHECK_EVERY == 0 {
                verify(&tree, &live);
            }
        }
        verify(&tree, &live);

        // Drain past the compaction threshold (> 64 dead slots and more dead
        // than alive), then keep going: the rebuilt tree must stay exact.
        while live.len() > 4 {
            let idx = (rng() as usize) % live.len();
            let (p, id) = live.swap_remove(idx);
            assert!(tree.remove(p, id));
        }
        verify(&tree, &live);

        // Refill through the (possibly rebuilt) free list one more time.
        for _ in 0..if cfg!(miri) { 24 } else { 256 } {
            let p = Point::new((rng() % 1000) as f64, (rng() % 1000) as f64);
            tree.insert(p, next_id);
            live.push((p, next_id));
            next_id += 1;
        }
        verify(&tree, &live);
    }
}
