//! Region quadtree over labelled points, stored as a Morton-ordered block list.
//!
//! This is the storage scheme behind the SILC index (Section 3.3): for a source vertex,
//! every other vertex is labelled with the "color" of the first edge on the shortest
//! path towards it; contiguous single-color regions are represented by maximal quadtree
//! blocks. A block is a power-of-two aligned square in Morton space, so the block
//! containing a query point is found by binary search over the sorted block list.
//!
//! The tree is generic over the label type so it can also be reused for object
//! hierarchies (Distance Browsing's original candidate generator).

use crate::morton::{morton_encode, MORTON_BITS};

/// A maximal single-label quadtree block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadBlock<L> {
    /// Smallest Morton code covered by the block.
    pub morton_lo: u64,
    /// Largest Morton code covered by the block (inclusive).
    pub morton_hi: u64,
    /// The label shared by every point in the block.
    pub label: L,
    /// Range into the Morton-sorted point array of the points inside this block.
    pub point_range: (u32, u32),
}

/// A region quadtree over a set of labelled grid points.
#[derive(Debug, Clone)]
pub struct RegionQuadtree<L> {
    blocks: Vec<QuadBlock<L>>,
    /// Points sorted by Morton code: `(morton, original_index)`.
    points: Vec<(u64, u32)>,
}

impl<L: Copy + Eq> RegionQuadtree<L> {
    /// Builds the quadtree for `points`, where `points[i]` is the grid cell of item `i`
    /// and `label(i)` its label. Items whose label is `None` are skipped (SILC skips the
    /// source vertex itself).
    pub fn build(points: &[(u32, u32)], label: impl Fn(usize) -> Option<L>) -> RegionQuadtree<L> {
        let mut coded: Vec<(u64, u32)> = Vec::with_capacity(points.len());
        let mut labels: Vec<Option<L>> = Vec::with_capacity(points.len());
        for (i, &(x, y)) in points.iter().enumerate() {
            if let Some(l) = label(i) {
                coded.push((morton_encode(x, y), i as u32));
                labels.push(Some(l));
            }
        }
        // Sort points by Morton code, carrying labels along.
        let mut order: Vec<u32> = (0..coded.len() as u32).collect();
        order.sort_unstable_by_key(|&i| coded[i as usize].0);
        let points_sorted: Vec<(u64, u32)> = order.iter().map(|&i| coded[i as usize]).collect();
        let labels_sorted: Vec<L> =
            order.iter().map(|&i| labels[i as usize].expect("filtered")).collect();

        let mut blocks = Vec::new();
        if !points_sorted.is_empty() {
            subdivide(
                &points_sorted,
                &labels_sorted,
                0,
                points_sorted.len(),
                0,
                1u64 << (2 * MORTON_BITS),
                &mut blocks,
            );
        }
        RegionQuadtree { blocks, points: points_sorted }
    }

    /// Number of blocks (the index's storage cost driver).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All blocks in Morton order.
    pub fn blocks(&self) -> &[QuadBlock<L>] {
        &self.blocks
    }

    /// Morton-sorted points `(code, original_index)` backing the tree.
    pub fn points(&self) -> &[(u64, u32)] {
        &self.points
    }

    /// Finds the block containing the given Morton code, if any. This is the
    /// `O(log |V|)` lookup of the SILC "Morton list".
    pub fn locate(&self, morton: u64) -> Option<&QuadBlock<L>> {
        // Blocks are disjoint and sorted by morton_lo; find the last block whose lo <= code.
        let idx = self.blocks.partition_point(|b| b.morton_lo <= morton);
        if idx == 0 {
            return None;
        }
        let b = &self.blocks[idx - 1];
        if morton <= b.morton_hi {
            Some(b)
        } else {
            None
        }
    }

    /// The label of the block containing the Morton code, if any.
    pub fn label_at(&self, morton: u64) -> Option<L> {
        self.locate(morton).map(|b| b.label)
    }

    /// Approximate memory footprint of the index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<QuadBlock<L>>()
            + self.points.len() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Recursively subdivides the Morton range `[range_lo, range_hi)` covering the sorted
/// points `points[lo..hi]` until each emitted block contains points of one label only.
fn subdivide<L: Copy + Eq>(
    points: &[(u64, u32)],
    labels: &[L],
    lo: usize,
    hi: usize,
    range_lo: u64,
    range_hi: u64,
    out: &mut Vec<QuadBlock<L>>,
) {
    if lo >= hi {
        return;
    }
    let first = labels[lo];
    let uniform = labels[lo..hi].iter().all(|&l| l == first);
    if uniform || range_hi - range_lo <= 1 {
        out.push(QuadBlock {
            morton_lo: range_lo,
            morton_hi: range_hi - 1,
            label: first,
            point_range: (lo as u32, hi as u32),
        });
        return;
    }
    // Split into the four Morton-contiguous quadrants of this square.
    let quarter = (range_hi - range_lo) / 4;
    let mut start = lo;
    for q in 0..4u64 {
        let q_lo = range_lo + q * quarter;
        let q_hi = q_lo + quarter;
        let end = start + points[start..hi].partition_point(|&(code, _)| code < q_hi);
        subdivide(points, labels, start, end, q_lo, q_hi, out);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_label_collapses_to_one_block() {
        let pts: Vec<(u32, u32)> = (0..20).map(|i| (i, i * 2)).collect();
        let qt = RegionQuadtree::build(&pts, |_| Some(1u32));
        assert_eq!(qt.num_blocks(), 1);
        assert_eq!(qt.label_at(morton_encode(5, 10)), Some(1));
    }

    #[test]
    fn two_half_planes_produce_pure_blocks() {
        // Left half labelled 0, right half labelled 1.
        let mut pts = Vec::new();
        for x in 0..32u32 {
            for y in 0..32u32 {
                pts.push((x * 1000, y * 1000));
            }
        }
        let qt = RegionQuadtree::build(&pts, |i| Some((pts[i].0 >= 16_000) as u8));
        // Every point must be found in a block with its own label.
        for &(x, y) in &pts {
            let label = qt.label_at(morton_encode(x, y)).expect("point covered");
            assert_eq!(label, (x >= 16_000) as u8);
        }
        // And far fewer blocks than points.
        assert!(qt.num_blocks() < pts.len() / 4);
    }

    #[test]
    fn locate_misses_outside_any_block() {
        let pts = vec![(0u32, 0u32), (1, 1)];
        let qt = RegionQuadtree::build(&pts, |i| Some(i as u8));
        // A far-away cell falls in a quadrant with no points, hence no block.
        assert_eq!(qt.label_at(morton_encode(60_000, 60_000)), None);
    }

    #[test]
    fn skipped_points_are_not_indexed() {
        let pts = vec![(10u32, 10u32), (20, 20), (30, 30)];
        let qt = RegionQuadtree::build(&pts, |i| if i == 1 { None } else { Some(7u8) });
        assert_eq!(qt.points().len(), 2);
        assert!(qt.memory_bytes() > 0);
    }

    #[test]
    fn duplicate_cells_with_conflicting_labels_terminate() {
        // Two items in the same grid cell with different labels cannot be separated; the
        // builder must still terminate and emit a minimal block.
        let pts = vec![(5u32, 5u32), (5, 5)];
        let qt = RegionQuadtree::build(&pts, |i| Some(i as u8));
        assert!(qt.num_blocks() >= 1);
        assert!(qt.label_at(morton_encode(5, 5)).is_some());
    }

    #[test]
    fn blocks_partition_the_points() {
        let pts: Vec<(u32, u32)> = (0..200).map(|i| ((i * 37) % 500, (i * 91) % 500)).collect();
        let qt = RegionQuadtree::build(&pts, |i| Some((i % 5) as u8));
        let covered: usize =
            qt.blocks().iter().map(|b| (b.point_range.1 - b.point_range.0) as usize).sum();
        assert_eq!(covered, pts.len());
    }
}
