//! Dijkstra searches in the flavours needed across the workspace.
//!
//! All variants use the no-decrease-key binary heap and a bit-array settled container
//! (the paper's recommended combination), and all assume strictly positive edge weights
//! (enforced by [`rnknn_graph::GraphBuilder`]).

use rnknn_graph::{Graph, NodeId, Weight, INFINITY};

use crate::budget::{QueryBudget, UNLIMITED};
use crate::heap::MinHeap;
use crate::scratch::SearchScratch;
use crate::settled::{BitSettled, SettledContainer};

/// Operation counters reported by the instrumented searches; used by the experiment
/// harness to reproduce the paper's auxiliary series (e.g. vertices settled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices removed from the priority queue and settled.
    pub settled: usize,
    /// Entries pushed onto the priority queue.
    pub pushes: usize,
    /// Edges relaxed (distance updates attempted).
    pub relaxed: usize,
}

/// Point-to-point network distance from `source` to `target`, or [`INFINITY`] when
/// unreachable. Terminates as soon as `target` is settled.
pub fn distance(graph: &Graph, source: NodeId, target: NodeId) -> Weight {
    distance_with_stats(graph, source, target).0
}

/// Same as [`distance`] but also returns operation counters.
pub fn distance_with_stats(graph: &Graph, source: NodeId, target: NodeId) -> (Weight, SearchStats) {
    let mut scratch = SearchScratch::new();
    distance_with_stats_in(graph, source, target, &mut scratch)
}

/// [`distance_with_stats`] running on a reusable [`SearchScratch`]: after a warm-up
/// search, repeated point-to-point queries allocate nothing (the IER Dijkstra-oracle
/// hot path).
pub fn distance_with_stats_in(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    scratch: &mut SearchScratch,
) -> (Weight, SearchStats) {
    distance_with_stats_budgeted_in(graph, source, target, scratch, &UNLIMITED)
}

/// [`distance_with_stats_in`] honoring a [`QueryBudget`]: one step is charged per
/// settled vertex, and an exhausted budget makes the search return [`INFINITY`]
/// early (the caller detects truncation via [`QueryBudget::is_exhausted`]).
pub fn distance_with_stats_budgeted_in(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    scratch: &mut SearchScratch,
    budget: &QueryBudget,
) -> (Weight, SearchStats) {
    let mut stats = SearchStats::default();
    if source == target {
        return (0, stats);
    }
    scratch.begin(graph.num_vertices());
    scratch.visited.set_dist(source, 0);
    scratch.heap.push(0, source);
    stats.pushes += 1;
    while let Some((d, v)) = scratch.heap.pop() {
        if !scratch.visited.settle(v) {
            continue;
        }
        stats.settled += 1;
        if v == target {
            return (d, stats);
        }
        if !budget.charge(1) {
            break;
        }
        for (t, w) in graph.neighbors(v) {
            stats.relaxed += 1;
            let nd = d + w;
            if nd < scratch.visited.dist(t) {
                scratch.visited.set_dist(t, nd);
                scratch.heap.push(nd, t);
                stats.pushes += 1;
            }
        }
    }
    (INFINITY, stats)
}

/// Bounded point-to-point distance: the exact distance when it is `< bound`,
/// otherwise `bound` itself (or [`INFINITY`] when `bound == INFINITY` and `target`
/// is unreachable). The search stops as soon as the frontier minimum reaches
/// `bound` and never pushes labels `>= bound`, so a caller that only needs to know
/// whether a vertex is closer than its current k-th candidate (IER's candidate
/// loop) pays a fraction of the full search.
pub fn distance_within_with_stats_in(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    bound: Weight,
    scratch: &mut SearchScratch,
) -> (Weight, SearchStats) {
    distance_within_with_stats_budgeted_in(graph, source, target, bound, scratch, &UNLIMITED)
}

/// [`distance_within_with_stats_in`] honoring a [`QueryBudget`] (one step per
/// settled vertex; an exhausted budget saturates the answer to `bound`).
pub fn distance_within_with_stats_budgeted_in(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    bound: Weight,
    scratch: &mut SearchScratch,
    budget: &QueryBudget,
) -> (Weight, SearchStats) {
    let mut stats = SearchStats::default();
    if bound == INFINITY {
        return distance_with_stats_budgeted_in(graph, source, target, scratch, budget);
    }
    if bound == 0 {
        return (bound, stats);
    }
    if source == target {
        return (0, stats);
    }
    scratch.begin(graph.num_vertices());
    scratch.visited.set_dist(source, 0);
    scratch.heap.push(0, source);
    stats.pushes += 1;
    while let Some((d, v)) = scratch.heap.pop() {
        if d >= bound {
            return (bound, stats);
        }
        if !scratch.visited.settle(v) {
            continue;
        }
        stats.settled += 1;
        if v == target {
            return (d, stats);
        }
        if !budget.charge(1) {
            break;
        }
        for (t, w) in graph.neighbors(v) {
            stats.relaxed += 1;
            let nd = d + w;
            if nd < bound && nd < scratch.visited.dist(t) {
                scratch.visited.set_dist(t, nd);
                scratch.heap.push(nd, t);
                stats.pushes += 1;
            }
        }
    }
    // Labels >= bound were pruned, so an exhausted queue only proves the distance
    // is not < bound.
    (bound, stats)
}

/// Full single-source shortest-path distances from `source` to every vertex.
pub fn single_source(graph: &Graph, source: NodeId) -> Vec<Weight> {
    let n = graph.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut settled = BitSettled::new(n);
    let mut heap: MinHeap<NodeId> = MinHeap::new();
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, v)) = heap.pop() {
        if !settled.settle(v) {
            continue;
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(nd, t);
            }
        }
    }
    dist
}

/// Single-source shortest-path tree: returns `(distances, parents)` where `parents[v]`
/// is the predecessor of `v` on a shortest path from `source` (or `v` itself for the
/// source and unreachable vertices). Used by the SILC colouring scheme.
pub fn sssp_tree(graph: &Graph, source: NodeId) -> (Vec<Weight>, Vec<NodeId>) {
    let n = graph.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
    let mut settled = BitSettled::new(n);
    let mut heap: MinHeap<NodeId> = MinHeap::new();
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, v)) = heap.pop() {
        if !settled.settle(v) {
            continue;
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                parent[t as usize] = v;
                heap.push(nd, t);
            }
        }
    }
    (dist, parent)
}

/// Distances from `source` to each vertex in `targets`, terminating early once all
/// targets are settled. Returns distances in the same order as `targets`.
pub fn single_source_to_targets(graph: &Graph, source: NodeId, targets: &[NodeId]) -> Vec<Weight> {
    let n = graph.num_vertices();
    let mut remaining = targets.len();
    let mut is_target = vec![false; n];
    for &t in targets {
        if !is_target[t as usize] {
            is_target[t as usize] = true;
        } else {
            remaining -= 1; // duplicate target
        }
    }
    if source < n as NodeId && is_target[source as usize] {
        // Handled naturally below, nothing special needed.
    }
    let mut dist = vec![INFINITY; n];
    let mut settled = BitSettled::new(n);
    let mut heap: MinHeap<NodeId> = MinHeap::new();
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, v)) = heap.pop() {
        if !settled.settle(v) {
            continue;
        }
        if is_target[v as usize] {
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(nd, t);
            }
        }
    }
    targets.iter().map(|&t| dist[t as usize]).collect()
}

/// Single-source distances restricted to a vertex subset: only vertices for which
/// `allowed` returns true may be traversed (the source is always allowed). Distances to
/// disallowed vertices are [`INFINITY`]. Used to compute subgraph-restricted distance
/// matrices / shortcuts while building G-tree and ROAD.
pub fn single_source_restricted(
    graph: &Graph,
    source: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> Vec<Weight> {
    let n = graph.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut settled = BitSettled::new(n);
    let mut heap: MinHeap<NodeId> = MinHeap::new();
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, v)) = heap.pop() {
        if !settled.settle(v) {
            continue;
        }
        for (t, w) in graph.neighbors(v) {
            if !allowed(t) {
                continue;
            }
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(nd, t);
            }
        }
    }
    dist
}

/// Dijkstra over an implicit graph given by an adjacency closure.
///
/// `num_vertices` bounds the vertex ids; `adjacency(v, out)` must append `(neighbor,
/// weight)` pairs for vertex `v` into `out`. This is used for the reduced border graphs
/// built while constructing G-tree distance matrices and ROAD shortcuts, where
/// materialising an explicit [`Graph`] per level would be wasteful.
pub fn dijkstra_adjacency(
    num_vertices: usize,
    source: NodeId,
    mut adjacency: impl FnMut(NodeId, &mut Vec<(NodeId, Weight)>),
) -> Vec<Weight> {
    let mut dist = vec![INFINITY; num_vertices];
    let mut settled = BitSettled::new(num_vertices);
    let mut heap: MinHeap<NodeId> = MinHeap::new();
    let mut scratch: Vec<(NodeId, Weight)> = Vec::new();
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, v)) = heap.pop() {
        if !settled.settle(v) {
            continue;
        }
        scratch.clear();
        adjacency(v, &mut scratch);
        for &(t, w) in &scratch {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(nd, t);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::{GraphBuilder, Point};

    /// 0 --1-- 1 --1-- 2
    /// |               |
    /// 10              1
    /// |               |
    /// 3 ------1------ 4
    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 3, 10);
        b.add_edge(2, 4, 1);
        b.add_edge(3, 4, 1);
        b.build()
    }

    #[test]
    fn point_to_point_distances() {
        let g = small_graph();
        assert_eq!(distance(&g, 0, 0), 0);
        assert_eq!(distance(&g, 0, 2), 2);
        assert_eq!(distance(&g, 0, 4), 3);
        assert_eq!(distance(&g, 0, 3), 4); // via 1,2,4 not the weight-10 edge
        assert_eq!(distance(&g, 3, 1), 3);
    }

    #[test]
    fn stats_are_populated() {
        let g = small_graph();
        let (d, stats) = distance_with_stats(&g, 0, 4);
        assert_eq!(d, 3);
        assert!(stats.settled >= 3);
        assert!(stats.pushes >= stats.settled);
        assert!(stats.relaxed >= stats.settled);
    }

    #[test]
    fn bounded_distance_is_exact_below_the_bound_and_saturated_above() {
        let g = small_graph();
        let mut scratch = SearchScratch::new();
        for (s, t) in [(0u32, 4u32), (3, 1), (0, 3), (0, 2)] {
            let exact = distance(&g, s, t);
            for bound in [0, 1, exact, exact + 1, exact + 100, INFINITY] {
                let (got, _) = distance_within_with_stats_in(&g, s, t, bound, &mut scratch);
                if exact < bound {
                    assert_eq!(got, exact, "{s}->{t} bound={bound}");
                } else {
                    assert!(got >= bound, "{s}->{t} bound={bound} got={got}");
                }
            }
        }
        // Unreachable stays INFINITY when the bound is INFINITY.
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1, 1);
        let g2 = b.build();
        assert_eq!(distance_within_with_stats_in(&g2, 0, 2, INFINITY, &mut scratch).0, INFINITY);
        assert_eq!(distance_within_with_stats_in(&g2, 0, 2, 10, &mut scratch).0, 10);
    }

    #[test]
    fn scratch_reuse_matches_fresh_searches() {
        let g = small_graph();
        let mut scratch = SearchScratch::new();
        for (s, t) in [(0u32, 4u32), (3, 1), (0, 3), (4, 0), (2, 2)] {
            let (fresh, fresh_stats) = distance_with_stats(&g, s, t);
            let (reused, reused_stats) = distance_with_stats_in(&g, s, t, &mut scratch);
            assert_eq!(fresh, reused, "{s}->{t}");
            assert_eq!(fresh_stats, reused_stats, "{s}->{t}");
        }
    }

    #[test]
    fn unreachable_returns_infinity() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(distance(&g, 0, 2), INFINITY);
        let d = single_source(&g, 0);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn single_source_matches_point_to_point() {
        let g = small_graph();
        let all = single_source(&g, 0);
        for t in 0..5 {
            assert_eq!(all[t as usize], distance(&g, 0, t));
        }
    }

    #[test]
    fn sssp_tree_parents_are_consistent() {
        let g = small_graph();
        let (dist, parent) = sssp_tree(&g, 0);
        assert_eq!(parent[0], 0);
        for v in 1..5u32 {
            if dist[v as usize] == INFINITY {
                continue;
            }
            let p = parent[v as usize];
            let w = g.edge_weight(p, v).expect("parent edge exists");
            assert_eq!(dist[p as usize] + w, dist[v as usize]);
        }
    }

    #[test]
    fn targets_variant_matches_full_sssp() {
        let g = small_graph();
        let targets = vec![4, 3, 3, 0];
        let d = single_source_to_targets(&g, 1, &targets);
        let full = single_source(&g, 1);
        assert_eq!(d, targets.iter().map(|&t| full[t as usize]).collect::<Vec<_>>());
    }

    #[test]
    fn restricted_search_cannot_leave_subset() {
        let g = small_graph();
        // Only allow vertices {0,1,2}: distance to 4 must be INFINITY and to 3 only via
        // the direct weight-10 edge... but 3 is disallowed too.
        let allowed = |v: NodeId| v <= 2;
        let d = single_source_restricted(&g, 0, allowed);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], INFINITY);
        assert_eq!(d[4], INFINITY);
    }

    #[test]
    fn exhausted_budget_truncates_and_latches_while_generous_budget_is_bit_identical() {
        let g = small_graph();
        let mut scratch = SearchScratch::new();
        // A one-step quota (checked every step) cannot reach vertex 3 from 0.
        let budget = QueryBudget::new(None, 1, 1);
        let (d, stats) = distance_with_stats_budgeted_in(&g, 0, 3, &mut scratch, &budget);
        assert_eq!(d, INFINITY);
        assert!(budget.is_exhausted());
        assert!(stats.settled >= 1, "a partial search still reports its work");
        // A generous budget must not change the answer or the operation counts.
        let generous = QueryBudget::with_step_limit(1 << 40);
        for (s, t) in [(0u32, 4u32), (3, 1), (0, 3)] {
            let plain = distance_with_stats_in(&g, s, t, &mut scratch);
            let budgeted = distance_with_stats_budgeted_in(&g, s, t, &mut scratch, &generous);
            assert_eq!(plain, budgeted, "{s}->{t}");
        }
        assert!(!generous.is_exhausted());
    }

    #[test]
    fn adjacency_closure_variant_matches_graph_variant() {
        let g = small_graph();
        let d1 = single_source(&g, 2);
        let d2 = dijkstra_adjacency(g.num_vertices(), 2, |v, out| {
            out.extend(g.neighbors(v));
        });
        assert_eq!(d1, d2);
    }
}
