//! A* point-to-point search with an admissible Euclidean heuristic.
//!
//! IER's original formulation computes network distances with Dijkstra; A* with the
//! Euclidean lower bound is the natural first improvement and is included as an
//! additional oracle baseline in the experiment harness.

use rnknn_graph::{EuclideanBound, Graph, NodeId, Weight, INFINITY};

use crate::budget::{QueryBudget, UNLIMITED};
use crate::dijkstra::SearchStats;
use crate::scratch::SearchScratch;

/// Network distance from `source` to `target` using A* guided by `bound`.
///
/// The heuristic must be admissible (never overestimate); [`Graph::euclidean_bound`]
/// produces such a bound for both travel-distance and travel-time graphs.
pub fn astar_distance(
    graph: &Graph,
    bound: &EuclideanBound,
    source: NodeId,
    target: NodeId,
) -> Weight {
    astar_distance_with_stats(graph, bound, source, target).0
}

/// Same as [`astar_distance`] but also returns operation counters (the same
/// [`SearchStats`] vocabulary as the Dijkstra searches, so the IER oracles report
/// comparable effort).
pub fn astar_distance_with_stats(
    graph: &Graph,
    bound: &EuclideanBound,
    source: NodeId,
    target: NodeId,
) -> (Weight, SearchStats) {
    let mut scratch = SearchScratch::new();
    astar_distance_with_stats_in(graph, bound, source, target, &mut scratch)
}

/// [`astar_distance_with_stats`] running on a reusable [`SearchScratch`]: after a
/// warm-up search, repeated point-to-point queries allocate nothing (the IER
/// A*-oracle hot path). The scratch's distance array stores g-scores; the heap is
/// keyed by f-score.
pub fn astar_distance_with_stats_in(
    graph: &Graph,
    bound: &EuclideanBound,
    source: NodeId,
    target: NodeId,
    scratch: &mut SearchScratch,
) -> (Weight, SearchStats) {
    astar_distance_with_stats_budgeted_in(graph, bound, source, target, scratch, &UNLIMITED)
}

/// [`astar_distance_with_stats_in`] honoring a [`QueryBudget`] (one step per
/// settled vertex; an exhausted budget truncates to [`INFINITY`]).
pub fn astar_distance_with_stats_budgeted_in(
    graph: &Graph,
    bound: &EuclideanBound,
    source: NodeId,
    target: NodeId,
    scratch: &mut SearchScratch,
    budget: &QueryBudget,
) -> (Weight, SearchStats) {
    let mut stats = SearchStats::default();
    if source == target {
        return (0, stats);
    }
    let target_point = graph.coord(target);
    scratch.begin(graph.num_vertices());
    scratch.visited.set_dist(source, 0);
    let h0 = bound.lower_bound(graph.coord(source), target_point);
    scratch.heap.push(h0, source);
    stats.pushes += 1;
    while let Some((_, v)) = scratch.heap.pop() {
        if !scratch.visited.settle(v) {
            continue;
        }
        stats.settled += 1;
        if v == target {
            return (scratch.visited.dist(v), stats);
        }
        if !budget.charge(1) {
            break;
        }
        let dv = scratch.visited.dist(v);
        for (t, w) in graph.neighbors(v) {
            if scratch.visited.is_settled(t) {
                continue;
            }
            stats.relaxed += 1;
            let nd = dv + w;
            if nd < scratch.visited.dist(t) {
                scratch.visited.set_dist(t, nd);
                let h = bound.lower_bound(graph.coord(t), target_point);
                scratch.heap.push(nd + h, t);
                stats.pushes += 1;
            }
        }
    }
    (INFINITY, stats)
}

/// Bounded A* distance: the exact distance when it is `< bound`, otherwise `bound`
/// itself (or [`INFINITY`] when `bound == INFINITY` and `target` is unreachable).
/// Admissibility makes the cut safe: every remaining label's f-score lower-bounds
/// the true distance through it, so once the frontier's f-minimum reaches `bound`
/// no path `< bound` remains.
pub fn astar_distance_within_with_stats_in(
    graph: &Graph,
    bound_fn: &EuclideanBound,
    source: NodeId,
    target: NodeId,
    bound: Weight,
    scratch: &mut SearchScratch,
) -> (Weight, SearchStats) {
    astar_distance_within_with_stats_budgeted_in(
        graph, bound_fn, source, target, bound, scratch, &UNLIMITED,
    )
}

/// [`astar_distance_within_with_stats_in`] honoring a [`QueryBudget`] (one step
/// per settled vertex; an exhausted budget saturates the answer to `bound`).
pub fn astar_distance_within_with_stats_budgeted_in(
    graph: &Graph,
    bound_fn: &EuclideanBound,
    source: NodeId,
    target: NodeId,
    bound: Weight,
    scratch: &mut SearchScratch,
    budget: &QueryBudget,
) -> (Weight, SearchStats) {
    let mut stats = SearchStats::default();
    if bound == INFINITY {
        return astar_distance_with_stats_budgeted_in(
            graph, bound_fn, source, target, scratch, budget,
        );
    }
    if bound == 0 {
        return (bound, stats);
    }
    if source == target {
        return (0, stats);
    }
    let target_point = graph.coord(target);
    scratch.begin(graph.num_vertices());
    scratch.visited.set_dist(source, 0);
    let h0 = bound_fn.lower_bound(graph.coord(source), target_point);
    if h0 >= bound {
        return (bound, stats);
    }
    scratch.heap.push(h0, source);
    stats.pushes += 1;
    while let Some((f, v)) = scratch.heap.pop() {
        if f >= bound {
            return (bound, stats);
        }
        if !scratch.visited.settle(v) {
            continue;
        }
        stats.settled += 1;
        if v == target {
            return (scratch.visited.dist(v), stats);
        }
        if !budget.charge(1) {
            break;
        }
        let dv = scratch.visited.dist(v);
        for (t, w) in graph.neighbors(v) {
            if scratch.visited.is_settled(t) {
                continue;
            }
            stats.relaxed += 1;
            let nd = dv + w;
            if nd < scratch.visited.dist(t) {
                let h = bound_fn.lower_bound(graph.coord(t), target_point);
                if nd + h >= bound {
                    continue;
                }
                scratch.visited.set_dist(t, nd);
                scratch.heap.push(nd + h, t);
                stats.pushes += 1;
            }
        }
    }
    (bound, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder, Point};

    #[test]
    fn astar_matches_dijkstra_on_a_grid() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(400, 11));
        for kind in [EdgeWeightKind::Distance, EdgeWeightKind::Time] {
            let g = net.graph(kind);
            let bound = g.euclidean_bound();
            let n = g.num_vertices() as NodeId;
            for i in 0..30u32 {
                let s = (i * 37) % n;
                let t = (i * 101 + 7) % n;
                assert_eq!(
                    astar_distance(&g, &bound, s, t),
                    dijkstra::distance(&g, s, t),
                    "mismatch for {s}->{t} ({kind:?})"
                );
            }
        }
    }

    #[test]
    fn astar_trivial_cases() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_vertex(Point::new(9.0, 9.0));
        b.add_edge(0, 1, 1);
        let g = b.build();
        let bound = g.euclidean_bound();
        assert_eq!(astar_distance(&g, &bound, 0, 0), 0);
        assert_eq!(astar_distance(&g, &bound, 0, 1), 1);
        assert_eq!(astar_distance(&g, &bound, 0, 2), INFINITY);
    }
}
