//! Binary min-heaps.
//!
//! The default heap ([`MinHeap`]) does **not** support decrease-key: duplicate entries
//! for the same vertex are simply pushed and stale ones skipped when popped. On
//! degree-bounded road networks the number of duplicates is small, and the paper reports
//! a 2× speed-up from avoiding the per-vertex position map ("PQueue" line of Figure 7).
//!
//! [`IndexedMinHeap`] is the decrease-key variant used by the "first cut" INE ablation
//! and by construction-time algorithms that benefit from unique entries.

use rnknn_graph::Weight;

/// A plain binary min-heap of `(key, item)` pairs without decrease-key support.
///
/// `K` is typically [`Weight`] and `T` a vertex id, but any ordered key works.
#[derive(Debug, Clone)]
pub struct MinHeap<T, K = Weight> {
    data: Vec<(K, T)>,
}

impl<T: Copy, K: Copy + PartialOrd> MinHeap<T, K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        MinHeap { data: Vec::new() }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        MinHeap { data: Vec::with_capacity(cap) }
    }

    /// Number of entries currently stored (including stale duplicates).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Pushes an entry.
    #[inline]
    pub fn push(&mut self, key: K, item: T) {
        self.data.push((key, item));
        self.sift_up(self.data.len() - 1);
    }

    /// The smallest key currently in the heap.
    #[inline]
    pub fn peek_key(&self) -> Option<K> {
        self.data.first().map(|&(k, _)| k)
    }

    /// The smallest entry currently in the heap.
    pub fn peek(&self) -> Option<(K, T)> {
        self.data.first().copied()
    }

    /// Pops the entry with the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<(K, T)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let out = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        out
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.data[l].0 < self.data[smallest].0 {
                smallest = l;
            }
            if r < n && self.data[r].0 < self.data[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<T: Copy, K: Copy + PartialOrd> Default for MinHeap<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

/// A binary min-heap over items `0..n` with decrease-key support via a position map.
///
/// Each item may appear at most once; [`IndexedMinHeap::push_or_decrease`] inserts the
/// item or lowers its key. This is the classic "textbook" Dijkstra queue the paper's
/// first-cut INE uses (and then abandons).
#[derive(Debug, Clone)]
pub struct IndexedMinHeap {
    /// Heap of (key, item).
    data: Vec<(Weight, u32)>,
    /// Position of each item in `data`, or `u32::MAX` when absent.
    positions: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl IndexedMinHeap {
    /// Creates a heap able to hold items `0..n`.
    pub fn new(n: usize) -> Self {
        IndexedMinHeap { data: Vec::new(), positions: vec![ABSENT; n] }
    }

    /// Number of items currently in the heap.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when `item` is currently in the heap.
    pub fn contains(&self, item: u32) -> bool {
        self.positions[item as usize] != ABSENT
    }

    /// Current key of `item` if it is in the heap.
    pub fn key_of(&self, item: u32) -> Option<Weight> {
        let pos = self.positions[item as usize];
        if pos == ABSENT {
            None
        } else {
            Some(self.data[pos as usize].0)
        }
    }

    /// Inserts `item` with `key`, or decreases its key if it is already present with a
    /// larger key. Returns true if the heap changed.
    pub fn push_or_decrease(&mut self, key: Weight, item: u32) -> bool {
        let pos = self.positions[item as usize];
        if pos == ABSENT {
            self.data.push((key, item));
            let i = self.data.len() - 1;
            self.positions[item as usize] = i as u32;
            self.sift_up(i);
            true
        } else if key < self.data[pos as usize].0 {
            self.data[pos as usize].0 = key;
            self.sift_up(pos as usize);
            true
        } else {
            false
        }
    }

    /// Pops the item with the smallest key.
    pub fn pop(&mut self) -> Option<(Weight, u32)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let (k, item) = self.data.pop().expect("non-empty");
        self.positions[item as usize] = ABSENT;
        if !self.data.is_empty() {
            self.positions[self.data[0].1 as usize] = 0;
            self.sift_down(0);
        }
        Some((k, item))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                self.positions[self.data[parent].1 as usize] = i as u32;
                self.positions[self.data[i].1 as usize] = parent as u32;
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.data[l].0 < self.data[smallest].0 {
                smallest = l;
            }
            if r < n && self.data[r].0 < self.data[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.positions[self.data[smallest].1 as usize] = i as u32;
            self.positions[self.data[i].1 as usize] = smallest as u32;
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_heap_pops_in_key_order() {
        let mut h: MinHeap<u32> = MinHeap::new();
        for (k, v) in [(5, 50), (1, 10), (3, 30), (2, 20), (4, 40)] {
            h.push(k, v);
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            out.push((k, v));
        }
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
    }

    #[test]
    fn min_heap_allows_duplicates() {
        let mut h: MinHeap<u32> = MinHeap::new();
        h.push(7, 1);
        h.push(3, 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop(), Some((3, 1)));
        assert_eq!(h.pop(), Some((7, 1)));
        assert!(h.is_empty());
    }

    #[test]
    fn min_heap_peek_and_clear() {
        let mut h: MinHeap<u32> = MinHeap::new();
        assert_eq!(h.peek(), None);
        h.push(9, 2);
        h.push(4, 8);
        assert_eq!(h.peek_key(), Some(4));
        assert_eq!(h.peek(), Some((4, 8)));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn indexed_heap_decrease_key() {
        let mut h = IndexedMinHeap::new(10);
        assert!(h.push_or_decrease(10, 3));
        assert!(h.push_or_decrease(8, 5));
        assert!(h.contains(3));
        assert_eq!(h.key_of(3), Some(10));
        // Decrease 3's key below 5's.
        assert!(h.push_or_decrease(2, 3));
        // Increasing is a no-op.
        assert!(!h.push_or_decrease(99, 3));
        assert_eq!(h.pop(), Some((2, 3)));
        assert_eq!(h.pop(), Some((8, 5)));
        assert_eq!(h.pop(), None);
        assert!(!h.contains(3));
    }

    #[test]
    fn indexed_heap_orders_many_items() {
        let mut h = IndexedMinHeap::new(100);
        for i in 0..100u32 {
            h.push_or_decrease(((i * 37) % 100) as Weight, i);
        }
        let mut prev = 0;
        let mut count = 0;
        while let Some((k, _)) = h.pop() {
            assert!(k >= prev);
            prev = k;
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn heaps_sort_randomised_sequences_identically() {
        // Cross-check the two heap implementations against each other.
        let keys: Vec<Weight> = (0..200).map(|i| ((i * 7919 + 13) % 997) as Weight).collect();
        let mut plain: MinHeap<u32> = MinHeap::new();
        let mut indexed = IndexedMinHeap::new(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            plain.push(k, i as u32);
            indexed.push_or_decrease(k, i as u32);
        }
        let mut a = Vec::new();
        while let Some((k, _)) = plain.pop() {
            a.push(k);
        }
        let mut b = Vec::new();
        while let Some((k, _)) = indexed.pop() {
            b.push(k);
        }
        assert_eq!(a, b);
    }
}
