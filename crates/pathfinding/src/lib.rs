//! Shortest-path primitives shared by every method in the rnknn workspace.
//!
//! The paper's Section 6.2 shows that the choice of priority queue, settled-vertex
//! container and graph layout changes in-memory kNN performance by integer factors.
//! This crate provides exactly those building blocks so every method uses the same,
//! carefully chosen subroutines (as the paper does "to ensure fairness"):
//!
//! * [`heap`] — binary min-heaps: the default *no-decrease-key* heap (duplicates are
//!   pushed and stale entries skipped on pop) and an indexed decrease-key heap used by
//!   the "first cut" INE ablation of Figure 7.
//! * [`settled`] — settled-vertex containers: a bit-array (the paper's recommendation)
//!   and a hash-set variant for the same ablation.
//! * [`dijkstra`] — single-source, point-to-point, many-target and restricted-subgraph
//!   Dijkstra searches, plus shortest-path trees and a closure-based variant for the
//!   reduced graphs used while building G-tree and ROAD.
//! * [`astar`] — A* point-to-point search with a Euclidean lower-bound heuristic.
//! * [`bidirectional`] — bidirectional Dijkstra point-to-point search.
//! * [`scratch`] — reusable, epoch-tagged per-search state ([`SearchScratch`]), so the
//!   point-to-point searches above can run allocation-free in steady state.
//! * [`budget`] — cooperative per-query deadlines/step quotas ([`QueryBudget`]) that
//!   the point-to-point loops above honor, so a serving layer can cancel a runaway
//!   query without killing its thread.

#![forbid(unsafe_code)]

pub mod astar;
pub mod bidirectional;
pub mod budget;
pub mod dijkstra;
pub mod heap;
pub mod scratch;
pub mod settled;

pub use astar::astar_distance;
pub use bidirectional::bidirectional_distance;
pub use budget::{QueryBudget, UNLIMITED};
pub use dijkstra::{
    dijkstra_adjacency, distance, distance_with_stats, single_source, single_source_restricted,
    single_source_to_targets, sssp_tree, SearchStats,
};
pub use heap::{IndexedMinHeap, MinHeap};
pub use scratch::{SearchScratch, VisitedScratch};
pub use settled::{BitSettled, HashSettled, SettledContainer};
