//! Settled-vertex containers.
//!
//! Expansion-based searches (Dijkstra, INE, ROAD) must remember which vertices have
//! already been dequeued. The paper compares a hash-set against a bit-array and finds
//! the bit-array almost 2× faster despite the `O(|V|)` allocation per query ("Settled"
//! line of Figure 7), because it occupies 32× less space than an integer array and so
//! fits in cache. Both containers are provided behind a small trait so the INE ablation
//! can swap them.

use rnknn_graph::NodeId;
use std::collections::HashSet;

/// Common interface for settled-vertex containers.
pub trait SettledContainer {
    /// Creates a container for vertices `0..n`.
    fn for_vertices(n: usize) -> Self;
    /// Marks `v` as settled; returns true if it was not settled before.
    fn settle(&mut self, v: NodeId) -> bool;
    /// True when `v` has been settled.
    fn is_settled(&self, v: NodeId) -> bool;
    /// Number of settled vertices.
    fn count(&self) -> usize;
}

/// Bit-array settled container (one bit per road-network vertex).
#[derive(Debug, Clone)]
pub struct BitSettled {
    bits: Vec<u64>,
    count: usize,
}

impl BitSettled {
    /// Creates a bit-array able to hold vertices `0..n`, all unsettled.
    pub fn new(n: usize) -> Self {
        BitSettled { bits: vec![0; n.div_ceil(64)], count: 0 }
    }

    /// Clears all bits, keeping the allocation (useful when a search object is reused
    /// across queries).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }
}

impl SettledContainer for BitSettled {
    fn for_vertices(n: usize) -> Self {
        BitSettled::new(n)
    }

    #[inline]
    fn settle(&mut self, v: NodeId) -> bool {
        let word = (v / 64) as usize;
        let mask = 1u64 << (v % 64);
        if self.bits[word] & mask != 0 {
            false
        } else {
            self.bits[word] |= mask;
            self.count += 1;
            true
        }
    }

    #[inline]
    fn is_settled(&self, v: NodeId) -> bool {
        let word = (v / 64) as usize;
        self.bits[word] & (1u64 << (v % 64)) != 0
    }

    fn count(&self) -> usize {
        self.count
    }
}

/// Hash-set settled container (the paper's slower, allocation-light alternative).
#[derive(Debug, Clone, Default)]
pub struct HashSettled {
    set: HashSet<NodeId>,
}

impl SettledContainer for HashSettled {
    fn for_vertices(_n: usize) -> Self {
        HashSettled { set: HashSet::new() }
    }

    #[inline]
    fn settle(&mut self, v: NodeId) -> bool {
        self.set.insert(v)
    }

    #[inline]
    fn is_settled(&self, v: NodeId) -> bool {
        self.set.contains(&v)
    }

    fn count(&self) -> usize {
        self.set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: SettledContainer>() {
        let mut s = S::for_vertices(200);
        assert_eq!(s.count(), 0);
        assert!(!s.is_settled(5));
        assert!(s.settle(5));
        assert!(!s.settle(5));
        assert!(s.is_settled(5));
        assert!(s.settle(0));
        assert!(s.settle(199));
        assert!(s.is_settled(199));
        assert!(!s.is_settled(63));
        assert!(s.settle(63));
        assert!(s.settle(64));
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn bit_settled_behaviour() {
        exercise::<BitSettled>();
    }

    #[test]
    fn hash_settled_behaviour() {
        exercise::<HashSettled>();
    }

    #[test]
    fn bit_settled_clear_resets() {
        let mut s = BitSettled::new(100);
        s.settle(10);
        s.settle(90);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.is_settled(10));
        assert!(!s.is_settled(90));
    }

    #[test]
    fn containers_agree_on_random_sequences() {
        let mut bit = BitSettled::for_vertices(512);
        let mut hash = HashSettled::for_vertices(512);
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 33) as NodeId % 512;
            assert_eq!(bit.settle(v), hash.settle(v));
            assert_eq!(bit.is_settled(v), hash.is_settled(v));
        }
        assert_eq!(bit.count(), hash.count());
    }
}
