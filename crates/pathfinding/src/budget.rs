//! Cooperative per-query budgets: a deadline and/or a step quota that the search
//! loops check every few hundred settles, so a runaway query can be cut short
//! without killing its thread or poisoning its scratch pool.
//!
//! The contract is *cooperative*: hot loops call [`QueryBudget::charge`] once per
//! unit of work (a settled vertex, a materialized matrix row, an examined
//! candidate). `charge` is a plain add-and-compare on the fast path — the actual
//! wall-clock read only happens every [`QueryBudget::check_every`] steps — so an
//! unlimited budget costs a couple of registers per settle. When the budget is
//! exhausted the loop simply breaks and returns a partial/saturated value; the
//! engine converts the latched [`QueryBudget::is_exhausted`] flag into a typed
//! `DeadlineExceeded` error *after* the search returns, which means searches
//! always unwind through their normal exit path and every pooled buffer stays
//! reusable.
//!
//! [`QueryBudget`] is `Sync` (its counters are relaxed atomics used by one query
//! at a time), which allows the process-wide [`UNLIMITED`] sentinel that every
//! unbudgeted entry point borrows.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How often (in charged steps) the deadline clock is consulted by default.
/// Settles take tens of nanoseconds and `Instant::now` tens more, so checking
/// every 256 steps keeps the clock overhead well under 1% while bounding the
/// overshoot past a deadline to a few microseconds of extra work.
pub const DEFAULT_CHECK_EVERY: u64 = 256;

/// A cooperative deadline + step quota for one query (see the module docs).
///
/// All counters use relaxed single-writer atomics: a budget belongs to one query
/// at a time, the atomics only exist so the type can be `Sync` (for the
/// [`UNLIMITED`] static) — on the hot path they compile to plain loads/stores.
#[derive(Debug)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    step_limit: u64,
    check_every: u64,
    steps: AtomicU64,
    next_check: AtomicU64,
    exhausted: AtomicBool,
}

/// The no-op budget every unbudgeted search borrows: no deadline, a `u64::MAX`
/// step quota, and a first check so far away it never fires.
pub static UNLIMITED: QueryBudget = QueryBudget {
    deadline: None,
    step_limit: u64::MAX,
    check_every: u64::MAX,
    steps: AtomicU64::new(0),
    next_check: AtomicU64::new(u64::MAX),
    exhausted: AtomicBool::new(false),
};

impl QueryBudget {
    /// A fresh budget with no deadline and no step quota (equivalent to
    /// [`UNLIMITED`], but with its own counters, so [`QueryBudget::steps`]
    /// reports this query's work).
    pub fn unlimited() -> QueryBudget {
        QueryBudget::new(None, u64::MAX, DEFAULT_CHECK_EVERY)
    }

    /// A budget that exhausts once `Instant::now()` reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> QueryBudget {
        QueryBudget::new(Some(deadline), u64::MAX, DEFAULT_CHECK_EVERY)
    }

    /// [`QueryBudget::with_deadline`] at `now + timeout`.
    pub fn with_timeout(timeout: Duration) -> QueryBudget {
        QueryBudget::with_deadline(Instant::now() + timeout)
    }

    /// A budget that exhausts after `step_limit` charged steps (no wall clock).
    pub fn with_step_limit(step_limit: u64) -> QueryBudget {
        QueryBudget::new(None, step_limit, DEFAULT_CHECK_EVERY)
    }

    /// The fully general constructor: an optional deadline, a step quota
    /// (`u64::MAX` for none) and the check cadence (clamped to at least 1).
    pub fn new(deadline: Option<Instant>, step_limit: u64, check_every: u64) -> QueryBudget {
        let check_every = check_every.max(1);
        QueryBudget {
            deadline,
            step_limit,
            check_every,
            steps: AtomicU64::new(0),
            // The first deadline check happens after `check_every` steps; a pure
            // step quota smaller than that must still be honored exactly.
            next_check: AtomicU64::new(check_every.min(step_limit)),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Charges `n` units of work. Returns `true` while the budget holds; the
    /// first `false` latches [`QueryBudget::is_exhausted`] and the caller is
    /// expected to break out of its loop and return a partial value.
    #[inline]
    pub fn charge(&self, n: u64) -> bool {
        let steps = self.steps.load(Ordering::Relaxed).saturating_add(n);
        self.steps.store(steps, Ordering::Relaxed);
        if steps < self.next_check.load(Ordering::Relaxed) {
            return true;
        }
        self.check_now(steps)
    }

    /// The slow path of [`QueryBudget::charge`]: consult the quota and the
    /// clock, latch exhaustion, schedule the next check.
    #[cold]
    fn check_now(&self, steps: u64) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        if steps >= self.step_limit {
            self.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        let next = steps.saturating_add(self.check_every).min(self.step_limit);
        self.next_check.store(next, Ordering::Relaxed);
        true
    }

    /// Whether this budget has run out (latched by the first failing charge).
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Total units of work charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The configured check cadence.
    pub fn check_every(&self) -> u64 {
        self.check_every
    }
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = QueryBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.steps(), 10_000);
        // The shared sentinel behaves the same (steps are shared, checks never fire).
        for _ in 0..1_000 {
            assert!(UNLIMITED.charge(3));
        }
        assert!(!UNLIMITED.is_exhausted());
    }

    #[test]
    fn step_limit_is_exact_and_latches() {
        let b = QueryBudget::new(None, 100, 7);
        let mut ok = 0u64;
        while b.charge(1) {
            ok += 1;
            assert!(ok <= 100, "budget failed to stop at the quota");
        }
        assert_eq!(ok, 99, "charge must fail on the step that reaches the limit");
        assert!(b.is_exhausted());
        assert!(!b.charge(1), "exhaustion must latch");
    }

    #[test]
    fn expired_deadline_exhausts_at_the_first_check() {
        let b = QueryBudget::new(Some(Instant::now() - Duration::from_millis(1)), u64::MAX, 4);
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(!b.charge(1), "4th charge crosses the check cadence and sees the deadline");
        assert!(b.is_exhausted());
    }

    #[test]
    fn generous_deadline_charges_freely() {
        let b = QueryBudget::with_timeout(Duration::from_secs(3600));
        for _ in 0..100_000 {
            assert!(b.charge(1));
        }
        assert!(!b.is_exhausted());
    }

    #[test]
    fn bulk_charges_saturate_instead_of_wrapping() {
        let b = QueryBudget::with_step_limit(u64::MAX);
        assert!(b.charge(u64::MAX - 1));
        assert!(!b.charge(u64::MAX), "saturated step count must hit the quota, not wrap");
    }
}
