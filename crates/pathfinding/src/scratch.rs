//! Reusable, epoch-tagged per-search state.
//!
//! Every expansion-style search in the workspace needs the same three pieces of
//! state: a tentative-distance array, a settled set and a priority queue. Allocating
//! them per query costs an `O(n)` allocation + wipe on every call — the dominant
//! cost of a short search on a large graph. [`SearchScratch`] keeps all three alive
//! across searches: distance and settled entries are validated by an epoch tag, so
//! "clearing" between searches is a single integer increment, and the arrays and
//! heap grow to the largest graph seen and are then reused forever. This is the
//! same pattern the CH query scratch and the G-tree leaf scratch use; hoisting it
//! here lets INE, ROAD and the Dijkstra/A* IER oracles share one implementation
//! (and one pooled instance per thread, via the engine's scratch pool).

use rnknn_graph::{NodeId, Weight, INFINITY};

use crate::heap::MinHeap;

/// Epoch-tagged tentative distances + settled set, reusable across searches.
///
/// Split from the heap so a search can hold `&mut heap` and call the visited-set
/// methods at the same time (disjoint-field borrows).
#[derive(Debug, Default)]
pub struct VisitedScratch {
    /// Tentative distances; only valid where `dist_epoch` matches `epoch`.
    dist: Vec<Weight>,
    /// Epoch that wrote each `dist` entry; a mismatch means "unvisited this search".
    dist_epoch: Vec<u32>,
    /// Epoch that settled each vertex.
    settled_epoch: Vec<u32>,
    epoch: u32,
}

impl VisitedScratch {
    /// Starts a new search over `n` vertices: grows the arrays if this scratch has
    /// only seen smaller graphs, and advances the epoch (resetting the tags on the
    /// rare u32 wrap-around).
    pub fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
            self.dist_epoch.resize(n, 0);
            self.settled_epoch.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.dist_epoch.iter_mut().for_each(|e| *e = 0);
            self.settled_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Tentative distance of `v` this search ([`INFINITY`] when unvisited).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Weight {
        if self.dist_epoch[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    /// Sets the tentative distance of `v`.
    #[inline]
    pub fn set_dist(&mut self, v: NodeId, d: Weight) {
        self.dist[v as usize] = d;
        self.dist_epoch[v as usize] = self.epoch;
    }

    /// Marks `v` settled, returning false when it already was this search.
    #[inline]
    pub fn settle(&mut self, v: NodeId) -> bool {
        if self.settled_epoch[v as usize] == self.epoch {
            return false;
        }
        self.settled_epoch[v as usize] = self.epoch;
        true
    }

    /// True when `v` was settled this search.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled_epoch[v as usize] == self.epoch
    }
}

/// A complete reusable search state: epoch-tagged visited set plus a priority queue.
///
/// [`SearchScratch::begin`] prepares both for a new search; after a warm-up search
/// of comparable size, running another search allocates nothing.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// The priority queue (kept public so searches can split-borrow it against
    /// [`SearchScratch::visited`]).
    pub heap: MinHeap<NodeId>,
    /// The epoch-tagged distance/settled arrays.
    pub visited: VisitedScratch,
}

impl SearchScratch {
    /// Creates an empty scratch (no allocation until the first search).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new search over `n` vertices: clears the heap and advances the
    /// visited epoch.
    pub fn begin(&mut self, n: usize) {
        self.heap.clear();
        self.visited.begin(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_isolate_consecutive_searches() {
        let mut s = SearchScratch::new();
        s.begin(10);
        s.visited.set_dist(3, 7);
        assert!(s.visited.settle(3));
        assert!(!s.visited.settle(3));
        assert_eq!(s.visited.dist(3), 7);
        assert_eq!(s.visited.dist(4), INFINITY);
        s.heap.push(7, 3);

        // A new search sees none of the previous one's state.
        s.begin(10);
        assert_eq!(s.visited.dist(3), INFINITY);
        assert!(!s.visited.is_settled(3));
        assert!(s.heap.is_empty());
    }

    #[test]
    fn grows_to_the_largest_graph_seen() {
        let mut s = SearchScratch::new();
        s.begin(4);
        s.visited.set_dist(2, 5);
        s.begin(100);
        assert_eq!(s.visited.dist(2), INFINITY);
        s.visited.set_dist(99, 1);
        assert_eq!(s.visited.dist(99), 1);
        // Shrinking back is a no-op; old large entries stay invalid by epoch.
        s.begin(4);
        assert_eq!(s.visited.dist(2), INFINITY);
    }
}
