//! Bidirectional Dijkstra point-to-point search.
//!
//! Used as a baseline oracle and as the query skeleton for Contraction Hierarchies
//! (which runs the same alternating search on the upward/downward graphs).

use rnknn_graph::{Graph, NodeId, Weight, INFINITY};

use crate::heap::MinHeap;
use crate::settled::{BitSettled, SettledContainer};

/// Network distance from `source` to `target` via bidirectional Dijkstra.
pub fn bidirectional_distance(graph: &Graph, source: NodeId, target: NodeId) -> Weight {
    if source == target {
        return 0;
    }
    let n = graph.num_vertices();
    let mut dist_f = vec![INFINITY; n];
    let mut dist_b = vec![INFINITY; n];
    let mut settled_f = BitSettled::new(n);
    let mut settled_b = BitSettled::new(n);
    let mut heap_f: MinHeap<NodeId> = MinHeap::new();
    let mut heap_b: MinHeap<NodeId> = MinHeap::new();
    dist_f[source as usize] = 0;
    dist_b[target as usize] = 0;
    heap_f.push(0, source);
    heap_b.push(0, target);
    let mut best = INFINITY;

    loop {
        let key_f = heap_f.peek_key().unwrap_or(INFINITY);
        let key_b = heap_b.peek_key().unwrap_or(INFINITY);
        // Standard stopping criterion: when the sum of the two frontiers' minima reaches
        // the best meeting distance, no better path exists (weights are positive).
        if key_f.saturating_add(key_b) >= best || (key_f == INFINITY && key_b == INFINITY) {
            break;
        }
        let forward = key_f <= key_b;
        let (heap, dist_this, dist_other, settled) = if forward {
            (&mut heap_f, &mut dist_f, &dist_b, &mut settled_f)
        } else {
            (&mut heap_b, &mut dist_b, &dist_f, &mut settled_b)
        };
        if let Some((d, v)) = heap.pop() {
            if !settled.settle(v) {
                continue;
            }
            if dist_other[v as usize] != INFINITY {
                best = best.min(d + dist_other[v as usize]);
            }
            for (t, w) in graph.neighbors(v) {
                let nd = d + w;
                if nd < dist_this[t as usize] {
                    dist_this[t as usize] = nd;
                    heap.push(nd, t);
                    if dist_other[t as usize] != INFINITY {
                        best = best.min(nd + dist_other[t as usize]);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder};

    #[test]
    fn matches_unidirectional_dijkstra() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 5));
        let g = net.graph(EdgeWeightKind::Distance);
        let n = g.num_vertices() as NodeId;
        for i in 0..40u32 {
            let s = (i * 97) % n;
            let t = (i * 211 + 3) % n;
            assert_eq!(
                bidirectional_distance(&g, s, t),
                dijkstra::distance(&g, s, t),
                "mismatch {s}->{t}"
            );
        }
    }

    #[test]
    fn handles_unreachable_and_identical_endpoints() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 2);
        let g = b.build();
        assert_eq!(bidirectional_distance(&g, 0, 0), 0);
        assert_eq!(bidirectional_distance(&g, 0, 1), 2);
        assert_eq!(bidirectional_distance(&g, 0, 3), INFINITY);
    }
}
