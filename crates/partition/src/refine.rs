//! Boundary refinement of a bisection (Fiduccia–Mattheyses style).

/// A compact working graph used during partitioning: CSR adjacency with vertex weights
/// (vertex weights are the number of original vertices a coarse vertex represents).
#[derive(Debug, Clone)]
pub struct WorkGraph {
    pub offsets: Vec<u32>,
    pub targets: Vec<u32>,
    pub edge_weights: Vec<u64>,
    pub vertex_weights: Vec<u64>,
}

impl WorkGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertex_weights.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_weights.is_empty()
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi].iter().copied().zip(self.edge_weights[lo..hi].iter().copied())
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Sum of edge weights crossing the bisection `side`.
    pub fn cut(&self, side: &[bool]) -> u64 {
        let mut cut = 0;
        for v in 0..self.len() as u32 {
            for (t, w) in self.neighbors(v) {
                if v < t && side[v as usize] != side[t as usize] {
                    cut += w;
                }
            }
        }
        cut
    }
}

/// Performs boundary refinement passes on a bisection, moving vertices between sides
/// when that reduces the cut and keeps both sides within `max_side_weight`.
///
/// `side[v]` is true when `v` is on side 1. Returns the number of vertices moved.
pub fn refine_bisection(
    graph: &WorkGraph,
    side: &mut [bool],
    max_side_weight: u64,
    passes: usize,
) -> usize {
    let n = graph.len();
    let mut weight_side1: u64 = (0..n).filter(|&v| side[v]).map(|v| graph.vertex_weights[v]).sum();
    let total = graph.total_weight();
    let mut moved_total = 0;

    for _ in 0..passes {
        let mut moved_this_pass = 0;
        for v in 0..n as u32 {
            // Gain of moving v to the other side = (cut edges to other side) - (to own side).
            let mut to_same = 0i64;
            let mut to_other = 0i64;
            for (t, w) in graph.neighbors(v) {
                if side[t as usize] == side[v as usize] {
                    to_same += w as i64;
                } else {
                    to_other += w as i64;
                }
            }
            let gain = to_other - to_same;
            if gain <= 0 {
                continue;
            }
            // Check balance after the move.
            let vw = graph.vertex_weights[v as usize];
            let new_weight_side1 =
                if side[v as usize] { weight_side1 - vw } else { weight_side1 + vw };
            let new_weight_side0 = total - new_weight_side1;
            if new_weight_side1 > max_side_weight || new_weight_side0 > max_side_weight {
                continue;
            }
            side[v as usize] = !side[v as usize];
            weight_side1 = new_weight_side1;
            moved_this_pass += 1;
        }
        moved_total += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    moved_total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a WorkGraph from an undirected edge list.
    pub(crate) fn work_graph(n: usize, edges: &[(u32, u32, u64)]) -> WorkGraph {
        let mut degree = vec![0u32; n];
        for &(u, v, _) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut weights = vec![0u64; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v, w) in edges {
            targets[cursor[u as usize] as usize] = v;
            weights[cursor[u as usize] as usize] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            weights[cursor[v as usize] as usize] = w;
            cursor[v as usize] += 1;
        }
        WorkGraph { offsets, targets, edge_weights: weights, vertex_weights: vec![1; n] }
    }

    #[test]
    fn refinement_reduces_cut_on_a_path() {
        // Path 0-1-2-3-4-5 with an alternating initial assignment: terrible cut.
        let g = work_graph(6, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)]);
        let mut side = vec![false, true, false, true, false, true];
        let before = g.cut(&side);
        refine_bisection(&g, &mut side, 4, 8);
        let after = g.cut(&side);
        assert!(after < before, "cut {before} -> {after}");
        // Balance respected: neither side exceeds 4 vertices.
        let ones = side.iter().filter(|&&s| s).count();
        assert!((2..=4).contains(&ones));
    }

    #[test]
    fn refinement_respects_balance_limit() {
        // Star graph: center 0 connected to 1..=5. Moving everything to one side would
        // zero the cut but violate balance.
        let edges: Vec<(u32, u32, u64)> = (1..=5).map(|i| (0u32, i as u32, 1u64)).collect();
        let g = work_graph(6, &edges);
        let mut side = vec![false, false, false, true, true, true];
        refine_bisection(&g, &mut side, 4, 10);
        let ones = side.iter().filter(|&&s| s).count() as u64;
        assert!(ones <= 4 && (6 - ones) <= 4);
    }

    #[test]
    fn cut_counts_each_edge_once() {
        let g = work_graph(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 2)]);
        let side = vec![false, false, true, true];
        assert_eq!(g.cut(&side), 3);
    }
}
