//! The multilevel partitioner.

use rnknn_graph::{Graph, NodeId};

use crate::refine::{refine_bisection, WorkGraph};
use crate::PartitionAssignment;

/// Tuning knobs for the partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Coarsening stops once the working graph has at most this many vertices.
    pub coarsen_until: usize,
    /// Allowed imbalance: each side of a bisection may hold at most
    /// `(1 + balance_tolerance) / 2` of the total vertex weight.
    pub balance_tolerance: f64,
    /// Refinement passes applied at every uncoarsening level.
    pub refinement_passes: usize,
    /// Seed for the deterministic tie-breaking order.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            coarsen_until: 512,
            balance_tolerance: 0.10,
            refinement_passes: 4,
            seed: 1,
        }
    }
}

/// Multilevel recursive-bisection graph partitioner.
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    config: PartitionConfig,
}

impl Partitioner {
    /// Creates a partitioner with the default configuration.
    pub fn new() -> Self {
        Partitioner { config: PartitionConfig::default() }
    }

    /// Creates a partitioner with an explicit configuration.
    pub fn with_config(config: PartitionConfig) -> Self {
        Partitioner { config }
    }

    /// Partitions the subgraph of `graph` induced by `vertices` into `parts` pieces.
    ///
    /// Returns one part id (in `0..parts`) per entry of `vertices`. Parts are balanced
    /// within the configured tolerance and every part is non-empty whenever
    /// `vertices.len() >= parts`.
    pub fn partition(
        &self,
        graph: &Graph,
        vertices: &[NodeId],
        parts: usize,
    ) -> PartitionAssignment {
        assert!(parts >= 1, "parts must be >= 1");
        let n = vertices.len();
        if parts == 1 || n <= 1 {
            return vec![0; n];
        }
        // Build the induced working graph with local ids.
        let mut local = vec![u32::MAX; graph.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut offsets = vec![0u32; n + 1];
        let mut targets = Vec::new();
        let mut edge_weights = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for (t, _w) in graph.neighbors(v) {
                let lt = local[t as usize];
                if lt != u32::MAX {
                    targets.push(lt);
                    // Cut quality is measured in number of crossing edges, matching the
                    // partitioning objective used by G-tree/ROAD (minimise borders).
                    edge_weights.push(1u64);
                }
            }
            offsets[i + 1] = targets.len() as u32;
        }
        let work = WorkGraph { offsets, targets, edge_weights, vertex_weights: vec![1; n] };
        let mut assignment = vec![0u32; n];
        let part_ids: Vec<u32> = (0..parts as u32).collect();
        self.recursive_bisect(
            &work,
            &(0..n as u32).collect::<Vec<_>>(),
            &part_ids,
            &mut assignment,
        );
        assignment
    }

    /// Recursively bisects the sub-working-graph over `members` (local vertex ids of the
    /// top-level working graph), assigning the ids in `part_ids` to the final pieces.
    fn recursive_bisect(
        &self,
        work: &WorkGraph,
        members: &[u32],
        part_ids: &[u32],
        assignment: &mut [u32],
    ) {
        if part_ids.len() == 1 {
            for &m in members {
                assignment[m as usize] = part_ids[0];
            }
            return;
        }
        // Split part ids proportionally (handles non-power-of-two fanouts).
        let left_parts = part_ids.len() / 2;
        let left_fraction = left_parts as f64 / part_ids.len() as f64;
        let side = self.bisect(work, members, left_fraction);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &m) in members.iter().enumerate() {
            if side[i] {
                right.push(m);
            } else {
                left.push(m);
            }
        }
        // Guarantee non-empty halves when possible.
        if left.is_empty() && !right.is_empty() {
            left.push(right.pop().expect("non-empty"));
        } else if right.is_empty() && !left.is_empty() {
            right.push(left.pop().expect("non-empty"));
        }
        self.recursive_bisect(work, &left, &part_ids[..left_parts], assignment);
        self.recursive_bisect(work, &right, &part_ids[left_parts..], assignment);
    }

    /// Bisects the subgraph over `members`; returns `side[i]` = true when `members[i]`
    /// belongs to the second piece. `left_fraction` is the target weight fraction of the
    /// first piece.
    fn bisect(&self, work: &WorkGraph, members: &[u32], left_fraction: f64) -> Vec<bool> {
        let n = members.len();
        if n <= 1 {
            return vec![false; n];
        }
        // Extract the induced sub-working-graph with compact ids.
        let mut local = vec![u32::MAX; work.len()];
        for (i, &m) in members.iter().enumerate() {
            local[m as usize] = i as u32;
        }
        let mut offsets = vec![0u32; n + 1];
        let mut targets = Vec::new();
        let mut edge_weights = Vec::new();
        let mut vertex_weights = Vec::with_capacity(n);
        for (i, &m) in members.iter().enumerate() {
            for (t, w) in work.neighbors(m) {
                let lt = local[t as usize];
                if lt != u32::MAX {
                    targets.push(lt);
                    edge_weights.push(w);
                }
            }
            offsets[i + 1] = targets.len() as u32;
            vertex_weights.push(work.vertex_weights[m as usize]);
        }
        let sub = WorkGraph { offsets, targets, edge_weights, vertex_weights };
        self.multilevel_bisect(&sub, left_fraction)
    }

    /// Multilevel bisection of a compact working graph.
    fn multilevel_bisect(&self, graph: &WorkGraph, left_fraction: f64) -> Vec<bool> {
        let total = graph.total_weight();
        let target_right = ((1.0 - left_fraction) * total as f64).round() as u64;
        let max_side = |target: u64| -> u64 {
            ((target as f64) * (1.0 + self.config.balance_tolerance)).ceil() as u64
        };

        if graph.len() <= self.config.coarsen_until {
            let mut side = self.grow_initial(graph, target_right);
            refine_bisection(
                graph,
                &mut side,
                max_side(total - target_right.min(total)).max(max_side(target_right)),
                self.config.refinement_passes,
            );
            return side;
        }

        // Coarsen one level by heavy-edge matching, recurse, project back, refine.
        let (coarse, map) = coarsen(graph, self.config.seed);
        let coarse_side = self.multilevel_bisect(&coarse, left_fraction);
        let mut side: Vec<bool> = (0..graph.len()).map(|v| coarse_side[map[v] as usize]).collect();
        refine_bisection(
            graph,
            &mut side,
            max_side(total - target_right.min(total)).max(max_side(target_right)),
            self.config.refinement_passes,
        );
        side
    }

    /// Greedy initial bisection: BFS region growth from a pseudo-peripheral vertex until
    /// the grown region reaches `target_right` weight; the grown region becomes side 1.
    fn grow_initial(&self, graph: &WorkGraph, target_right: u64) -> Vec<bool> {
        let n = graph.len();
        let mut side = vec![false; n];
        if n == 0 || target_right == 0 {
            return side;
        }
        // Pseudo-peripheral start: BFS from vertex 0, take the last vertex reached.
        let start = {
            let mut seen = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(0u32);
            seen[0] = true;
            let mut last = 0u32;
            while let Some(v) = queue.pop_front() {
                last = v;
                for (t, _) in graph.neighbors(v) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        queue.push_back(t);
                    }
                }
            }
            last
        };
        let mut grown_weight = 0u64;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        seen[start as usize] = true;
        let mut next_unseen = 0usize;
        while grown_weight < target_right {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // Disconnected working graph: jump to the next unseen vertex.
                    while next_unseen < n && seen[next_unseen] {
                        next_unseen += 1;
                    }
                    if next_unseen >= n {
                        break;
                    }
                    seen[next_unseen] = true;
                    next_unseen as u32
                }
            };
            side[v as usize] = true;
            grown_weight += graph.vertex_weights[v as usize];
            for (t, _) in graph.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        side
    }
}

/// One level of heavy-edge-matching coarsening. Returns the coarse graph and, for every
/// fine vertex, the coarse vertex it maps to.
fn coarsen(graph: &WorkGraph, seed: u64) -> (WorkGraph, Vec<u32>) {
    let n = graph.len();
    let mut matched = vec![u32::MAX; n];
    let mut coarse_id = vec![u32::MAX; n];
    let mut next_id = 0u32;

    // Visit vertices in a seeded pseudo-random order for matching quality.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }

    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Pick the heaviest-edge unmatched neighbor.
        let mut best: Option<(u32, u64)> = None;
        for (t, w) in graph.neighbors(v) {
            if t != v && matched[t as usize] == u32::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((t, w));
            }
        }
        match best {
            Some((t, _)) => {
                matched[v as usize] = t;
                matched[t as usize] = v;
                coarse_id[v as usize] = next_id;
                coarse_id[t as usize] = next_id;
            }
            None => {
                matched[v as usize] = v;
                coarse_id[v as usize] = next_id;
            }
        }
        next_id += 1;
    }

    // Build the coarse graph by aggregating edges between coarse vertices.
    let cn = next_id as usize;
    let mut vertex_weights = vec![0u64; cn];
    for v in 0..n {
        vertex_weights[coarse_id[v] as usize] += graph.vertex_weights[v];
    }
    let mut adjacency: Vec<std::collections::BTreeMap<u32, u64>> =
        vec![std::collections::BTreeMap::new(); cn];
    for v in 0..n as u32 {
        let cv = coarse_id[v as usize];
        for (t, w) in graph.neighbors(v) {
            let ct = coarse_id[t as usize];
            if cv != ct {
                *adjacency[cv as usize].entry(ct).or_insert(0) += w;
            }
        }
    }
    let mut offsets = vec![0u32; cn + 1];
    let mut targets = Vec::new();
    let mut edge_weights = Vec::new();
    for (i, adj) in adjacency.iter().enumerate() {
        for (&t, &w) in adj {
            targets.push(t);
            edge_weights.push(w);
        }
        offsets[i + 1] = targets.len() as u32;
    }
    (WorkGraph { offsets, targets, edge_weights, vertex_weights }, coarse_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
    use rnknn_graph::{EdgeWeightKind, GraphBuilder};

    fn check_partition(assignment: &[u32], parts: usize) {
        // Every part id in range and non-empty, sizes within a loose balance bound.
        let n = assignment.len();
        let mut counts = vec![0usize; parts];
        for &p in assignment {
            assert!((p as usize) < parts);
            counts[p as usize] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > 0, "part {p} is empty");
            assert!(c <= n, "part {p} too large");
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= min * 3 + 4, "parts too unbalanced: {counts:?}");
    }

    #[test]
    fn partitions_a_grid_into_balanced_quarters() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(2_000, 17));
        let g = net.graph(EdgeWeightKind::Distance);
        let vertices: Vec<_> = g.vertices().collect();
        let p = Partitioner::new();
        let assignment = p.partition(&g, &vertices, 4);
        check_partition(&assignment, 4);

        // The cut should be small relative to the number of edges on a planar-ish graph.
        let mut cut = 0usize;
        for (u, v, _) in g.edges() {
            if assignment[u as usize] != assignment[v as usize] {
                cut += 1;
            }
        }
        assert!(cut * 8 < g.num_edges(), "cut {} of {} edges looks too large", cut, g.num_edges());
    }

    #[test]
    fn partitions_vertex_subsets() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(1_000, 3));
        let g = net.graph(EdgeWeightKind::Distance);
        let subset: Vec<_> = g.vertices().filter(|v| v % 3 != 0).collect();
        let assignment = Partitioner::new().partition(&g, &subset, 2);
        assert_eq!(assignment.len(), subset.len());
        check_partition(&assignment, 2);
    }

    #[test]
    fn handles_tiny_inputs_and_single_part() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let p = Partitioner::new();
        assert_eq!(p.partition(&g, &[0, 1, 2], 1), vec![0, 0, 0]);
        assert_eq!(p.partition(&g, &[0], 4).len(), 1);
        let two = p.partition(&g, &[0, 1, 2], 2);
        check_partition(&two, 2);
    }

    #[test]
    fn non_power_of_two_fanout() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(900, 8));
        let g = net.graph(EdgeWeightKind::Distance);
        let vertices: Vec<_> = g.vertices().collect();
        let assignment = Partitioner::new().partition(&g, &vertices, 3);
        check_partition(&assignment, 3);
    }

    #[test]
    fn deterministic_for_same_config() {
        let net = RoadNetwork::generate(&GeneratorConfig::new(600, 5));
        let g = net.graph(EdgeWeightKind::Distance);
        let vertices: Vec<_> = g.vertices().collect();
        let a = Partitioner::new().partition(&g, &vertices, 4);
        let b = Partitioner::new().partition(&g, &vertices, 4);
        assert_eq!(a, b);
    }
}
