//! Multilevel graph partitioning.
//!
//! Both G-tree and ROAD recursively partition the road network into `f ≥ 2` balanced
//! parts with small edge cut (Section 3.4 / 3.5). The paper uses the multilevel scheme
//! of Karypis & Kumar (the paper's reference \[18\]) via the G-tree authors' code;
//! since the road-network
//! partitioning problem is NP-complete, any balanced small-cut heuristic preserves the
//! experimental trends (DESIGN.md §5). This crate implements a self-contained multilevel
//! partitioner:
//!
//! 1. **Coarsening** — repeated heavy-edge matching until the graph is small;
//! 2. **Initial partitioning** — greedy BFS region growing from pseudo-peripheral seeds;
//! 3. **Uncoarsening + refinement** — project the partition back up, applying
//!    boundary Fiduccia–Mattheyses-style moves at every level.
//!
//! `k`-way partitions are produced by recursive bisection, which is how both G-tree
//! (fanout `f`) and ROAD (`f` child Rnets) consume it.

#![forbid(unsafe_code)]

pub mod multilevel;
pub mod refine;

pub use multilevel::{PartitionConfig, Partitioner};

/// A `k`-way partition assignment: `parts[i]` is the part (in `0..k`) of the `i`-th
/// vertex of the partitioned vertex set.
pub type PartitionAssignment = Vec<u32>;
