//! Unsafe-hygiene lint.
//!
//! Rules, enforced over every workspace crate:
//!
//! 1. Each crate root (`src/lib.rs` / `src/main.rs` / `src/bin/*.rs`) carries
//!    `#![forbid(unsafe_code)]` — unless the crate is on [`UNSAFE_ALLOWLIST`].
//! 2. An allowlisted crate must carry `#![deny(unsafe_op_in_unsafe_fn)]` at
//!    its root, and every `unsafe` block or `unsafe fn` in its sources must be
//!    introduced by a `// SAFETY:` comment (for an `unsafe fn`, a
//!    `/// # Safety` doc section also counts).
//!
//! The scan is line-based and deliberately conservative: `unsafe` tokens inside
//! comments or string literals are ignored, and a `SAFETY` comment must appear
//! in the contiguous run of comment/attribute lines immediately above the
//! `unsafe` token (or trail it on the same line).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates allowed to contain `unsafe` code. Everything else must forbid it.
/// `rnknn-persist` hosts the artifact mmap + typed-view layer (the zero-copy
/// cold-start path); see docs/PERSISTENCE.md for its safety argument.
const UNSAFE_ALLOWLIST: &[&str] = &["rnknn-gtree", "rnknn-persist"];

/// Individual files (workspace-relative, `/`-separated) allowed to contain
/// `unsafe` inside an otherwise-forbidding crate. Integration-test binaries are
/// separate crate roots, so a root `#![forbid]` cannot cover them; each listed
/// file still needs a `// SAFETY:` comment on every site.
const UNSAFE_FILE_ALLOWLIST: &[&str] = &[
    // Counting global allocator: `GlobalAlloc` is an unsafe trait by design.
    "tests/tests/alloc_guard.rs",
];

/// Runs the lint over the workspace rooted at the manifest directory's parent
/// (xtask lives in `crates/xtask`, so the workspace root is two levels up).
pub fn run() -> ExitCode {
    let root = workspace_root();
    let crates = match discover_crates(&root) {
        Ok(crates) => crates,
        Err(err) => {
            eprintln!("xtask lint: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for krate in &crates {
        checked += 1;
        if let Err(mut errs) = check_crate(krate) {
            failures.append(&mut errs);
        }
    }

    if failures.is_empty() {
        println!(
            "xtask lint: {checked} crates clean ({} allowed unsafe: {})",
            UNSAFE_ALLOWLIST.len(),
            UNSAFE_ALLOWLIST.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("xtask lint: {failure}");
        }
        eprintln!("xtask lint: {} violation(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/xtask when run via `cargo xtask`.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

struct Crate {
    name: String,
    /// Crate roots: `src/lib.rs` and/or `src/main.rs`.
    roots: Vec<PathBuf>,
    /// Every `.rs` file under `src/`, `tests/`, `benches/`, `examples/`.
    sources: Vec<PathBuf>,
}

fn discover_crates(root: &Path) -> Result<Vec<Crate>, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("reading {}: {e}", root.join("Cargo.toml").display()))?;
    let mut dirs = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            if let Some(member) = line.split('"').nth(1) {
                dirs.push(root.join(member));
            }
            if line.contains(']') {
                break;
            }
        }
    }
    if dirs.is_empty() {
        return Err("no workspace members found in root Cargo.toml".into());
    }

    let mut crates = Vec::new();
    for dir in dirs {
        let cargo = fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("reading {}: {e}", dir.join("Cargo.toml").display()))?;
        let name = cargo
            .lines()
            .find_map(|l| {
                let l = l.trim();
                l.strip_prefix("name")
                    .and_then(|rest| rest.trim_start().strip_prefix('='))
                    .and_then(|rest| rest.split('"').nth(1))
                    .map(str::to_string)
            })
            .ok_or_else(|| format!("no package name in {}", dir.join("Cargo.toml").display()))?;

        let mut roots = Vec::new();
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(candidate);
            if path.is_file() {
                roots.push(path);
            }
        }
        // Each `src/bin/*.rs` is its own crate root: a root-level `forbid`
        // does not extend to it, so it must carry its own attribute.
        let mut bins = Vec::new();
        collect_rs(&dir.join("src/bin"), &mut bins);
        roots.append(&mut bins);
        if roots.is_empty() {
            return Err(format!("crate `{name}` has no src/lib.rs or src/main.rs"));
        }

        let mut sources = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&dir.join(sub), &mut sources);
        }
        crates.push(Crate { name, roots, sources });
    }
    Ok(crates)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn check_crate(krate: &Crate) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let allowed = UNSAFE_ALLOWLIST.contains(&krate.name.as_str());

    for root in &krate.roots {
        let text = fs::read_to_string(root)
            .map_err(|e| vec![format!("reading {}: {e}", root.display())])?;
        if allowed {
            if !has_inner_attr(&text, "deny(unsafe_op_in_unsafe_fn)") {
                errs.push(format!(
                    "{}: allowlisted crate `{}` must `#![deny(unsafe_op_in_unsafe_fn)]`",
                    root.display(),
                    krate.name
                ));
            }
        } else if !has_inner_attr(&text, "forbid(unsafe_code)") {
            errs.push(format!(
                "{}: crate `{}` must `#![forbid(unsafe_code)]` (or join the allowlist)",
                root.display(),
                krate.name
            ));
        }
    }

    for source in &krate.sources {
        let text = fs::read_to_string(source)
            .map_err(|e| vec![format!("reading {}: {e}", source.display())])?;
        let file_allowed = {
            let normalized = source.to_string_lossy().replace('\\', "/");
            UNSAFE_FILE_ALLOWLIST.iter().any(|f| normalized.ends_with(f))
        };
        for finding in scan_unsafe(&text) {
            if !allowed && !file_allowed {
                errs.push(format!(
                    "{}:{}: `unsafe` in non-allowlisted crate `{}`",
                    source.display(),
                    finding.line,
                    krate.name
                ));
            } else if !finding.documented {
                errs.push(format!(
                    "{}:{}: `unsafe` without a `// SAFETY:` comment",
                    source.display(),
                    finding.line
                ));
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn has_inner_attr(text: &str, attr: &str) -> bool {
    let needle = {
        let mut s = String::from("#![");
        let _ = write!(s, "{attr}");
        s.push(']');
        s
    };
    text.lines().any(|l| {
        let compact: String = l.chars().filter(|c| !c.is_whitespace()).collect();
        compact.starts_with(&needle)
    })
}

struct UnsafeSite {
    /// 1-based line number of the `unsafe` token.
    line: usize,
    /// Whether a `SAFETY` comment (or `# Safety` doc section) introduces it.
    documented: bool,
}

/// Finds `unsafe` tokens outside comments and string literals and checks each
/// for an introducing safety comment.
fn scan_unsafe(text: &str) -> Vec<UnsafeSite> {
    let lines: Vec<&str> = text.lines().collect();
    let mut sites = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let code = strip_comments_and_strings(raw);
        if !has_word(&code, "unsafe") {
            continue;
        }
        let documented =
            raw.to_ascii_lowercase().contains("safety") || preceding_block_has_safety(&lines, idx);
        sites.push(UnsafeSite { line: idx + 1, documented });
    }
    sites
}

/// Walks upward through the contiguous run of comment / attribute / empty-ish
/// lines above `idx` looking for a comment mentioning SAFETY.
fn preceding_block_has_safety(lines: &[&str], idx: usize) -> bool {
    for prev in lines[..idx].iter().rev() {
        let t = prev.trim();
        let is_comment = t.starts_with("//");
        let is_attr = t.starts_with("#[") || t.starts_with("#![");
        if is_comment && t.to_ascii_lowercase().contains("safety") {
            return true;
        }
        if !is_comment && !is_attr {
            return false;
        }
    }
    false
}

/// Blanks out `//` line comments and the contents of ordinary string literals
/// so token scans don't match inside them. (Good enough for this codebase: no
/// raw strings or block comments around `unsafe` tokens.)
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            out.push(' ');
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push(' ');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

fn has_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let left_ok = begin == 0 || !is_ident(bytes[begin - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_match_respects_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(has_word("pub unsafe fn f()", "unsafe"));
        assert!(!has_word("unsafely", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        assert!(scan_unsafe("// unsafe in a comment\n").is_empty());
        assert!(scan_unsafe("let s = \"unsafe\";\n").is_empty());
    }

    #[test]
    fn safety_comment_is_detected_across_attributes() {
        let src = "// SAFETY: checked above\n#[inline]\nunsafe { go() }\n";
        let sites = scan_unsafe(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn doc_safety_section_counts_for_unsafe_fn() {
        let src = "/// # Safety\n/// Caller must own it.\npub unsafe fn f() {}\n";
        let sites = scan_unsafe(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let src = "let x = 1;\nunsafe { go() }\n";
        let sites = scan_unsafe(src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented);
    }

    #[test]
    fn inner_attr_detection_ignores_spacing() {
        assert!(has_inner_attr("#![forbid(unsafe_code)]", "forbid(unsafe_code)"));
        assert!(has_inner_attr("#![ forbid( unsafe_code ) ]", "forbid(unsafe_code)"));
        assert!(!has_inner_attr("// #![forbid(unsafe_code)]", "forbid(unsafe_code)"));
    }
}
