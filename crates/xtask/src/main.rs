//! Workspace automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task so far is `lint`, the unsafe-hygiene pass described in
//! `docs/CORRECTNESS.md`: every crate must `#![forbid(unsafe_code)]` unless it
//! is on the explicit allowlist, and allowlisted crates must pair every
//! `unsafe` block or function with a `// SAFETY:` comment and deny
//! `unsafe_op_in_unsafe_fn` at the crate root.

#![forbid(unsafe_code)]

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}
