//! Safe typed views over a loaded artifact.
//!
//! The zero-copy story: an index struct loaded from disk must expose the same
//! `&[u32]` / `&[u64]` slices a freshly built one does, without copying the
//! multi-gigabyte arenas out of the mapped file and without threading a
//! borrow lifetime through every index type. The pieces:
//!
//! * [`Pod`] — the closed set of element types that may be reinterpreted from
//!   raw artifact bytes (`u8`, `u32`, `u64`). All are padding-free and valid
//!   for every bit pattern, so *no* byte corruption can make the cast itself
//!   unsound — corrupt values are wrong numbers, caught by checksums and
//!   structural validation, never UB.
//! * [`SharedSlice<T>`] — `Arc<Bytes>` + offset + length, checked for bounds
//!   and alignment at construction. Deref's to `&[T]`; cloning and sub-slicing
//!   are O(1) and share the buffer.
//! * [`PVec<T>`] — "persistent vec": either an owned `Vec<T>` (built index)
//!   or a [`SharedSlice<T>`] view (loaded index). Derefs to `[T]` either way,
//!   so query code is identical; mutation promotes to owned (copy-on-write),
//!   which keeps incremental-update paths working on loaded indexes.

use crate::buffer::Bytes;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Element types that may be viewed directly in artifact bytes.
///
/// # Safety
///
/// Implementors must have no padding, no invalid bit patterns, no pointers and
/// no interior mutability, and must have the same layout on disk as in memory
/// on a little-endian target (the crate refuses to compile elsewhere). The
/// trait is implemented for exactly `u8`, `u32`, `u64` and is not meant to be
/// implemented outside this crate.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: primitive unsigned integers have no padding and accept any bit pattern.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}

/// Reinterprets a Pod slice as its little-endian byte image (the serialized
/// form — this crate only compiles on little-endian targets).
pub fn pod_bytes<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: Pod guarantees no padding, so every byte of the slice is
    // initialised; `u8` has alignment 1; the length is the exact byte size.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// A typed, shared, immutable window into an artifact buffer.
pub struct SharedSlice<T: Pod> {
    buf: Arc<Bytes>,
    /// Byte offset of the first element in `buf`.
    offset: usize,
    /// Length in elements.
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> SharedSlice<T> {
    /// Creates a view of `len` elements starting `offset` bytes into `buf`.
    /// Returns `None` if the range is out of bounds or misaligned for `T`.
    pub fn new(buf: Arc<Bytes>, offset: usize, len: usize) -> Option<SharedSlice<T>> {
        let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
        let end = offset.checked_add(byte_len)?;
        if end > buf.len() {
            return None;
        }
        let base = buf.as_slice().as_ptr() as usize;
        if !(base + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(SharedSlice { buf, offset, len, _elem: PhantomData })
    }

    /// The elements. Zero-copy: the returned slice borrows the shared buffer.
    pub fn as_slice(&self) -> &[T] {
        let bytes = self.buf.as_slice();
        // SAFETY: construction checked that `offset .. offset + len*size_of::<T>()`
        // is in bounds of `bytes` and that the base pointer is aligned for `T`;
        // `Pod` guarantees every bit pattern is a valid `T`; the buffer is
        // immutable and kept alive by the `Arc` for the borrow's duration.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(self.offset).cast::<T>(), self.len) }
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view of `len` elements starting at element `start`.
    /// Returns `None` if the range exceeds this view.
    pub fn slice(&self, start: usize, len: usize) -> Option<SharedSlice<T>> {
        let end = start.checked_add(len)?;
        if end > self.len {
            return None;
        }
        Some(SharedSlice {
            buf: Arc::clone(&self.buf),
            offset: self.offset + start * std::mem::size_of::<T>(),
            len,
            _elem: PhantomData,
        })
    }
}

impl<T: Pod> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice {
            buf: Arc::clone(&self.buf),
            offset: self.offset,
            len: self.len,
            _elem: PhantomData,
        }
    }
}

impl<T: Pod> Deref for SharedSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> std::fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSlice").field("offset", &self.offset).field("len", &self.len).finish()
    }
}

enum Repr<T: Pod> {
    Owned(Vec<T>),
    View(SharedSlice<T>),
}

/// A vector that is either owned (built in memory) or a zero-copy view into a
/// loaded artifact. Derefs to `[T]` either way; mutable access promotes a
/// view to an owned copy first (copy-on-write).
pub struct PVec<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> PVec<T> {
    /// An empty owned vector.
    pub fn new() -> PVec<T> {
        PVec { repr: Repr::Owned(Vec::new()) }
    }

    /// Wraps a loaded view.
    pub fn from_view(view: SharedSlice<T>) -> PVec<T> {
        PVec { repr: Repr::View(view) }
    }

    /// Whether this is still a zero-copy view (false once promoted or built).
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View(_))
    }

    /// The elements.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::View(s) => s.as_slice(),
        }
    }

    /// Mutable access, promoting a view to an owned copy if needed.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Repr::View(s) = &self.repr {
            self.repr = Repr::Owned(s.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::View(_) => unreachable!("promoted above"),
        }
    }

    /// Consumes into an owned `Vec`, copying if this was a view.
    pub fn into_vec(self) -> Vec<T> {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::View(s) => s.as_slice().to_vec(),
        }
    }
}

impl<T: Pod> Default for PVec<T> {
    fn default() -> Self {
        PVec::new()
    }
}

impl<T: Pod> From<Vec<T>> for PVec<T> {
    fn from(v: Vec<T>) -> PVec<T> {
        PVec { repr: Repr::Owned(v) }
    }
}

impl<T: Pod> From<SharedSlice<T>> for PVec<T> {
    fn from(s: SharedSlice<T>) -> PVec<T> {
        PVec::from_view(s)
    }
}

impl<T: Pod> Deref for PVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> DerefMut for PVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.to_mut().as_mut_slice()
    }
}

impl<T: Pod> Clone for PVec<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => PVec { repr: Repr::Owned(v.clone()) },
            Repr::View(s) => PVec { repr: Repr::View(s.clone()) },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for PVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Summarize: index arrays run to hundreds of millions of elements.
        let s = self.as_slice();
        if s.len() <= 16 {
            write!(f, "PVec{s:?}")
        } else {
            write!(f, "PVec[len={}, view={}]", s.len(), self.is_view())
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for PVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for PVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_from_u64s(words: &[u64]) -> Arc<Bytes> {
        Arc::new(Bytes::from_vec(words.iter().flat_map(|w| w.to_le_bytes()).collect()))
    }

    #[test]
    fn shared_slice_views_typed_data() {
        let buf = buf_from_u64s(&[1, 2, 3, 4]);
        let s = SharedSlice::<u64>::new(Arc::clone(&buf), 0, 4).unwrap();
        assert_eq!(&*s, &[1, 2, 3, 4]);
        let sub = s.slice(1, 2).unwrap();
        assert_eq!(&*sub, &[2, 3]);
        assert!(s.slice(3, 2).is_none());
        let u32s = SharedSlice::<u32>::new(Arc::clone(&buf), 4, 2).unwrap();
        assert_eq!(u32s.len(), 2);
    }

    #[test]
    fn shared_slice_rejects_oob_and_misalignment() {
        let buf = buf_from_u64s(&[1, 2]);
        assert!(SharedSlice::<u64>::new(Arc::clone(&buf), 0, 3).is_none(), "out of bounds");
        assert!(SharedSlice::<u64>::new(Arc::clone(&buf), 4, 1).is_none(), "misaligned");
        assert!(SharedSlice::<u64>::new(Arc::clone(&buf), usize::MAX, 1).is_none(), "overflow");
        assert!(SharedSlice::<u64>::new(Arc::clone(&buf), 0, usize::MAX).is_none(), "mul overflow");
        assert!(SharedSlice::<u8>::new(buf, 15, 1).is_some(), "u8 has no alignment demands");
    }

    #[test]
    fn pvec_owned_and_view_behave_identically() {
        let buf = buf_from_u64s(&[10, 20, 30]);
        let view = PVec::from_view(SharedSlice::<u64>::new(buf, 0, 3).unwrap());
        let owned: PVec<u64> = vec![10, 20, 30].into();
        assert_eq!(view, owned);
        assert_eq!(&view[1..], &[20, 30]);
        assert!(view.is_view());
        assert!(!owned.is_view());
        let cloned = view.clone();
        assert!(cloned.is_view(), "clone of a view stays zero-copy");
    }

    #[test]
    fn pvec_mutation_promotes_to_owned() {
        let buf = buf_from_u64s(&[1, 2, 3]);
        let mut v = PVec::from_view(SharedSlice::<u64>::new(buf, 0, 3).unwrap());
        v[1] = 99;
        assert!(!v.is_view());
        assert_eq!(&*v, &[1, 99, 3]);
        assert_eq!(v.into_vec(), vec![1, 99, 3]);
    }
}
