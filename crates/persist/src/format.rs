//! The artifact container format: header, tagged sections, section table.
//!
//! ```text
//! offset 0                                            48
//! ┌──────────────────────────────────────────────────┬──────────────┬─────┬──────────────┬───────────────┐
//! │ header (48 B)                                    │ section 0    │ ... │ section N-1  │ section table │
//! │  magic[8] ver:u32 count:u32 table_off:u64        │ (8-aligned,  │     │              │ (N × 32 B)    │
//! │  file_len:u64 table_ck:u64 header_ck:u64         │  zero-padded │     │              │               │
//! └──────────────────────────────────────────────────┴──────────────┴─────┴──────────────┴───────────────┘
//! table entry: tag[8] offset:u64 len:u64 checksum:u64
//! ```
//!
//! Coverage invariant: **every byte of the file is covered by exactly one
//! checksum.** `header_ck` covers bytes `0..40` (so it covers `table_ck`
//! too); each section checksum covers the section's data *plus its zero pad
//! up to the next 8-byte boundary*; the table checksum covers the table
//! bytes. A flip of any stored checksum field is itself detected (section /
//! table checksums live under the table / header checksums; a flipped
//! `header_ck` no longer matches the recomputed one). Hence any single-bit
//! corruption anywhere in an artifact is caught before data is handed out —
//! the property the corruption-fuzz battery asserts exhaustively.
//!
//! Versioning policy: `FORMAT_VERSION` is a hard gate — there is no
//! cross-version migration; a version bump means "regenerate your artifacts"
//! (they are derived data, rebuilt from the graph in under a minute). Config
//! compatibility is layered above via fingerprints (see
//! [`crate::hash::Fingerprint`]).

use crate::buffer::Bytes;
use crate::error::PersistError;
use crate::hash::{checksum, Checksummer};
use crate::view::{pod_bytes, Pod, SharedSlice};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// First 8 bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"RNKNIDX\0";
/// The single format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 48;
/// Section-table entry size in bytes.
pub const TABLE_ENTRY_LEN: usize = 32;
/// Upper bound on section count (structural sanity; real artifacts have ~30).
pub const MAX_SECTIONS: u32 = 4096;

/// An 8-byte section tag, e.g. `Tag::new(b"CH.RANK\0")`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 8]);

impl Tag {
    /// A tag from its 8-byte name (pad with `\0`).
    pub const fn new(bytes: &[u8; 8]) -> Tag {
        Tag(*bytes)
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let end = self.0.iter().position(|&b| b == 0).unwrap_or(8);
        for &b in &self.0[..end] {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tag({self})")
    }
}

#[derive(Clone, Copy)]
struct TableEntry {
    tag: Tag,
    offset: u64,
    len: u64,
    checksum: u64,
}

struct OpenSection {
    tag: Tag,
    offset: u64,
    hasher: Checksummer,
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> PersistError {
    move |source| PersistError::Io { context, source }
}

/// Streams an artifact into any `Write + Seek` sink.
///
/// Usage: `new` → (`begin_section` → `write_*`... → `end_section`)* →
/// `finish`. Misuse (nested or duplicate sections, finishing with a section
/// open) panics: those are writer bugs, not data-dependent conditions.
pub struct ArtifactWriter<W: Write + Seek> {
    sink: W,
    pos: u64,
    entries: Vec<TableEntry>,
    open: Option<OpenSection>,
}

impl<W: Write + Seek> ArtifactWriter<W> {
    /// Starts an artifact: reserves the header (rewritten by `finish`).
    pub fn new(mut sink: W) -> Result<ArtifactWriter<W>, PersistError> {
        sink.write_all(&[0u8; HEADER_LEN]).map_err(io_err("writing artifact header"))?;
        Ok(ArtifactWriter { sink, pos: HEADER_LEN as u64, entries: Vec::new(), open: None })
    }

    /// Opens a new section. Sections start on an 8-byte boundary.
    pub fn begin_section(&mut self, tag: Tag) -> Result<(), PersistError> {
        assert!(self.open.is_none(), "begin_section(`{tag}`) while a section is open");
        assert!(self.entries.iter().all(|e| e.tag != tag), "duplicate section tag `{tag}`");
        debug_assert_eq!(self.pos % 8, 0, "sections always start 8-aligned");
        self.open = Some(OpenSection { tag, offset: self.pos, hasher: Checksummer::new() });
        Ok(())
    }

    /// Appends raw bytes to the open section.
    pub fn write_bytes(&mut self, data: &[u8]) -> Result<(), PersistError> {
        let open = self.open.as_mut().expect("write outside a section");
        open.hasher.update(data);
        self.sink.write_all(data).map_err(io_err("writing artifact section"))?;
        self.pos += data.len() as u64;
        Ok(())
    }

    /// Appends a `u32` slice (little-endian image).
    pub fn write_u32s(&mut self, data: &[u32]) -> Result<(), PersistError> {
        let bytes = pod_bytes(data);
        let open = self.open.as_mut().expect("write outside a section");
        open.hasher.update(bytes);
        self.sink.write_all(bytes).map_err(io_err("writing artifact section"))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Appends a `u64` slice (little-endian image).
    pub fn write_u64s(&mut self, data: &[u64]) -> Result<(), PersistError> {
        let bytes = pod_bytes(data);
        let open = self.open.as_mut().expect("write outside a section");
        open.hasher.update(bytes);
        self.sink.write_all(bytes).map_err(io_err("writing artifact section"))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Appends one `u64` scalar.
    pub fn write_u64(&mut self, v: u64) -> Result<(), PersistError> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Closes the open section: records its entry and zero-pads to the next
    /// 8-byte boundary. The pad bytes are **included in the checksum** (every
    /// file byte is covered by some checksum) but not in the recorded length.
    pub fn end_section(&mut self) -> Result<(), PersistError> {
        let mut open = self.open.take().expect("end_section without begin_section");
        let len = self.pos - open.offset;
        let pad = (8 - (self.pos % 8) as usize) % 8;
        if pad > 0 {
            let zeros = [0u8; 8];
            open.hasher.update(&zeros[..pad]);
            self.sink.write_all(&zeros[..pad]).map_err(io_err("padding artifact section"))?;
            self.pos += pad as u64;
        }
        self.entries.push(TableEntry {
            tag: open.tag,
            offset: open.offset,
            len,
            checksum: open.hasher.finish(),
        });
        Ok(())
    }

    /// Writes the section table, rewrites the header, flushes, and returns
    /// the sink.
    pub fn finish(mut self) -> Result<W, PersistError> {
        assert!(self.open.is_none(), "finish with a section still open");
        debug_assert_eq!(self.pos % 8, 0);
        let table_offset = self.pos;
        let mut table = Vec::with_capacity(self.entries.len() * TABLE_ENTRY_LEN);
        for e in &self.entries {
            table.extend_from_slice(&e.tag.0);
            table.extend_from_slice(&e.offset.to_le_bytes());
            table.extend_from_slice(&e.len.to_le_bytes());
            table.extend_from_slice(&e.checksum.to_le_bytes());
        }
        self.sink.write_all(&table).map_err(io_err("writing artifact section table"))?;
        let file_len = table_offset + table.len() as u64;
        let table_checksum = checksum(&table);

        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&table_offset.to_le_bytes());
        header[24..32].copy_from_slice(&file_len.to_le_bytes());
        header[32..40].copy_from_slice(&table_checksum.to_le_bytes());
        let header_checksum = checksum(&header[0..40]);
        header[40..48].copy_from_slice(&header_checksum.to_le_bytes());

        self.sink.seek(SeekFrom::Start(0)).map_err(io_err("rewriting artifact header"))?;
        self.sink.write_all(&header).map_err(io_err("rewriting artifact header"))?;
        self.sink.flush().map_err(io_err("flushing artifact"))?;
        Ok(self.sink)
    }
}

/// A fully validated, loaded artifact.
///
/// Construction runs the whole validation ladder — magic, version, header
/// checksum, declared length, table bounds, table checksum, per-section
/// bounds/alignment/checksums — so every accessor afterwards can hand out
/// views without re-checking integrity (structural validation of section
/// *contents* is the loading index's job).
pub struct Artifact {
    buf: Arc<Bytes>,
    entries: Vec<TableEntry>,
}

impl Artifact {
    /// Opens and validates an artifact file (mmap-backed when available).
    pub fn open(path: &Path) -> Result<Artifact, PersistError> {
        Self::from_bytes(Bytes::open(path)?)
    }

    /// Validates an in-memory artifact image (the Miri-exercised path).
    pub fn from_vec(data: Vec<u8>) -> Result<Artifact, PersistError> {
        Self::from_bytes(Bytes::from_vec(data))
    }

    /// Validates an artifact over any [`Bytes`] provider.
    pub fn from_bytes(bytes: Bytes) -> Result<Artifact, PersistError> {
        let buf = Arc::new(bytes);
        let data = buf.as_slice();
        if data.len() < HEADER_LEN {
            return Err(PersistError::Truncated {
                what: "header".into(),
                needed: HEADER_LEN as u64,
                available: data.len() as u64,
            });
        }
        let magic: [u8; 8] = data[0..8].try_into().unwrap();
        if magic != MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let stored_header_ck = u64::from_le_bytes(data[40..48].try_into().unwrap());
        let computed_header_ck = checksum(&data[0..40]);
        if stored_header_ck != computed_header_ck {
            return Err(PersistError::ChecksumMismatch {
                section: "header".into(),
                stored: stored_header_ck,
                computed: computed_header_ck,
            });
        }
        let section_count = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let table_offset = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let file_len = u64::from_le_bytes(data[24..32].try_into().unwrap());
        let stored_table_ck = u64::from_le_bytes(data[32..40].try_into().unwrap());

        let actual_len = data.len() as u64;
        if file_len > actual_len {
            return Err(PersistError::Truncated {
                what: "file body".into(),
                needed: file_len,
                available: actual_len,
            });
        }
        if file_len < actual_len {
            return Err(PersistError::corrupt(
                "header",
                format!(
                    "file is {actual_len} bytes but the header declares {file_len} \
                     ({} trailing bytes)",
                    actual_len - file_len
                ),
            ));
        }
        if section_count > MAX_SECTIONS {
            return Err(PersistError::corrupt(
                "header",
                format!("section count {section_count} exceeds the maximum {MAX_SECTIONS}"),
            ));
        }
        let table_len = u64::from(section_count) * TABLE_ENTRY_LEN as u64;
        let table_end = table_offset.checked_add(table_len).ok_or_else(|| {
            PersistError::corrupt("header", "section table offset overflows".to_string())
        })?;
        if table_offset < HEADER_LEN as u64 || table_offset % 8 != 0 || table_end != file_len {
            return Err(PersistError::corrupt(
                "section table",
                format!(
                    "table at {table_offset}..{table_end} does not sit flush at the end of a \
                     {file_len}-byte file"
                ),
            ));
        }
        let table = &data[table_offset as usize..table_end as usize];
        let computed_table_ck = checksum(table);
        if stored_table_ck != computed_table_ck {
            return Err(PersistError::ChecksumMismatch {
                section: "section table".into(),
                stored: stored_table_ck,
                computed: computed_table_ck,
            });
        }

        let mut entries = Vec::with_capacity(section_count as usize);
        let mut prev_end = HEADER_LEN as u64;
        for i in 0..section_count as usize {
            let e = &table[i * TABLE_ENTRY_LEN..(i + 1) * TABLE_ENTRY_LEN];
            let tag = Tag(e[0..8].try_into().unwrap());
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let stored_ck = u64::from_le_bytes(e[24..32].try_into().unwrap());
            if entries.iter().any(|prev: &TableEntry| prev.tag == tag) {
                return Err(PersistError::corrupt(
                    "section table",
                    format!("duplicate section tag `{tag}`"),
                ));
            }
            let end = offset.checked_add(len).ok_or_else(|| {
                PersistError::corrupt("section table", format!("section `{tag}` length overflows"))
            })?;
            // Sections were written back-to-back and 8-padded; anything else
            // (overlap, gap, reaching into header or table) is a lie.
            if offset != prev_end {
                return Err(PersistError::corrupt(
                    "section table",
                    format!(
                        "section `{tag}` claims offset {offset}, expected {prev_end} \
                         (sections must be contiguous)"
                    ),
                ));
            }
            let padded_end = end
                .checked_add((8 - end % 8) % 8)
                .filter(|&pe| pe <= table_offset)
                .ok_or_else(|| {
                    PersistError::corrupt(
                        "section table",
                        format!("section `{tag}` ({offset}..{end}) exceeds the data region"),
                    )
                })?;
            let covered = &data[offset as usize..padded_end as usize];
            let computed_ck = checksum(covered);
            if computed_ck != stored_ck {
                return Err(PersistError::ChecksumMismatch {
                    section: tag.to_string(),
                    stored: stored_ck,
                    computed: computed_ck,
                });
            }
            entries.push(TableEntry { tag, offset, len, checksum: stored_ck });
            prev_end = padded_end;
        }
        if prev_end != table_offset {
            return Err(PersistError::corrupt(
                "section table",
                format!(
                    "sections end at {prev_end} but the table starts at {table_offset} \
                     (unaccounted bytes)"
                ),
            ));
        }
        Ok(Artifact { buf, entries })
    }

    fn entry(&self, tag: Tag) -> Result<&TableEntry, PersistError> {
        self.entries
            .iter()
            .find(|e| e.tag == tag)
            .ok_or_else(|| PersistError::MissingSection { section: tag.to_string() })
    }

    /// Whether a section with this tag exists.
    pub fn has(&self, tag: Tag) -> bool {
        self.entries.iter().any(|e| e.tag == tag)
    }

    /// The tags present, in file order.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.entries.iter().map(|e| e.tag)
    }

    /// Whether the backing buffer is an mmap (false: owned memory).
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }

    /// A section's raw bytes.
    pub fn section_bytes(&self, tag: Tag) -> Result<&[u8], PersistError> {
        let e = self.entry(tag)?;
        Ok(&self.buf.as_slice()[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// A zero-copy typed view of a whole section.
    pub fn view<T: Pod>(&self, tag: Tag) -> Result<SharedSlice<T>, PersistError> {
        let e = self.entry(tag)?;
        let size = std::mem::size_of::<T>() as u64;
        if e.len % size != 0 {
            return Err(PersistError::corrupt(
                tag.to_string(),
                format!(
                    "section length {} is not a multiple of the {size}-byte element size",
                    e.len
                ),
            ));
        }
        SharedSlice::new(Arc::clone(&self.buf), e.offset as usize, (e.len / size) as usize)
            .ok_or_else(|| {
                PersistError::corrupt(tag.to_string(), "section view out of bounds or misaligned")
            })
    }

    /// A zero-copy `u32` view of a section.
    pub fn u32s(&self, tag: Tag) -> Result<SharedSlice<u32>, PersistError> {
        self.view::<u32>(tag)
    }

    /// A zero-copy `u64` view of a section.
    pub fn u64s(&self, tag: Tag) -> Result<SharedSlice<u64>, PersistError> {
        self.view::<u64>(tag)
    }

    /// A cursor over a scalar metadata section (a sequence of `u64` words).
    pub fn meta(&self, tag: Tag) -> Result<MetaReader<'_>, PersistError> {
        let bytes = self.section_bytes(tag)?;
        Ok(MetaReader { section: tag.to_string(), bytes, pos: 0 })
    }
}

impl std::fmt::Debug for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Artifact")
            .field("len", &self.buf.len())
            .field("mapped", &self.buf.is_mapped())
            .field("sections", &self.entries.iter().map(|e| e.tag).collect::<Vec<_>>())
            .finish()
    }
}

/// Sequential reader over a metadata section of `u64` words.
///
/// Each scalar config/topology field is stored as one little-endian `u64`
/// word (`f64` via its bit pattern, `bool` as 0/1 — anything else is reported
/// as corruption). [`MetaReader::finish`] asserts full consumption, so an
/// artifact with extra or missing fields is rejected rather than misread.
pub struct MetaReader<'a> {
    section: String,
    bytes: &'a [u8],
    pos: usize,
}

impl MetaReader<'_> {
    /// Reads the next `u64` word.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(PersistError::corrupt(
                self.section.clone(),
                format!(
                    "meta section exhausted at byte {} of {} (missing fields)",
                    self.pos,
                    self.bytes.len()
                ),
            ));
        }
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    /// Reads a `u32` stored as a word; range-checked.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| {
            PersistError::corrupt(self.section.clone(), format!("value {v} exceeds u32 range"))
        })
    }

    /// Reads a `usize` stored as a word; range-checked.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            PersistError::corrupt(self.section.clone(), format!("value {v} exceeds usize range"))
        })
    }

    /// Reads an `i64` stored as a word (two's-complement bit pattern).
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` stored as 0/1; anything else is corruption.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PersistError::corrupt(
                self.section.clone(),
                format!("value {v} is not a valid bool (expected 0 or 1)"),
            )),
        }
    }

    /// Asserts the section was fully consumed.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.bytes.len() {
            return Err(PersistError::corrupt(
                self.section,
                format!(
                    "{} trailing bytes after the last expected field",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// Writes scalar metadata words; the mirror of [`MetaReader`].
pub struct MetaWriter {
    words: Vec<u64>,
}

impl Default for MetaWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaWriter {
    /// An empty metadata record.
    pub fn new() -> MetaWriter {
        MetaWriter { words: Vec::new() }
    }

    /// Appends a `u64` word.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.words.push(v);
        self
    }

    /// Appends a `u32` (widened).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// Appends a `usize` (widened).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends an `i64` (bit pattern).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends an `f64` (bit pattern).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a `bool` (0/1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// The accumulated words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tag(s: &[u8; 8]) -> Tag {
        Tag::new(s)
    }

    fn sample_artifact() -> Vec<u8> {
        let mut w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        w.begin_section(tag(b"TEST.A\0\0")).unwrap();
        w.write_u32s(&[1, 2, 3, 4, 5]).unwrap(); // 20 bytes → 4 pad bytes
        w.end_section().unwrap();
        w.begin_section(tag(b"TEST.B\0\0")).unwrap();
        w.write_u64s(&[10, 20, 30]).unwrap();
        w.end_section().unwrap();
        w.begin_section(tag(b"TEST.M\0\0")).unwrap();
        let mut m = MetaWriter::new();
        m.u32(7).f64(2.5).bool(true).i64(-3);
        w.write_u64s(m.words()).unwrap();
        w.end_section().unwrap();
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn round_trip() {
        let data = sample_artifact();
        let art = Artifact::from_vec(data).unwrap();
        assert!(art.has(tag(b"TEST.A\0\0")));
        assert!(!art.has(tag(b"NOPE\0\0\0\0")));
        assert_eq!(&*art.u32s(tag(b"TEST.A\0\0")).unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(&*art.u64s(tag(b"TEST.B\0\0")).unwrap(), &[10, 20, 30]);
        let mut m = art.meta(tag(b"TEST.M\0\0")).unwrap();
        assert_eq!(m.u32().unwrap(), 7);
        assert_eq!(m.f64().unwrap(), 2.5);
        assert!(m.bool().unwrap());
        assert_eq!(m.i64().unwrap(), -3);
        m.finish().unwrap();
        assert_eq!(art.tags().count(), 3);
    }

    #[test]
    fn missing_section_is_typed() {
        let art = Artifact::from_vec(sample_artifact()).unwrap();
        match art.u64s(tag(b"NOPE\0\0\0\0")) {
            Err(PersistError::MissingSection { section }) => assert_eq!(section, "NOPE"),
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut data = sample_artifact();
        data[0] = b'X';
        assert!(matches!(Artifact::from_vec(data).unwrap_err(), PersistError::BadMagic { .. }));
    }

    #[test]
    fn bumped_version_is_typed() {
        let mut data = sample_artifact();
        // Patch the version field and fix up the header checksum so the gate
        // (not the checksum) rejects it.
        data[8..12].copy_from_slice(&2u32.to_le_bytes());
        let ck = checksum(&data[0..40]);
        data[40..48].copy_from_slice(&ck.to_le_bytes());
        match Artifact::from_vec(data).unwrap_err() {
            PersistError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 2);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let data = sample_artifact();
        let baseline = Artifact::from_vec(data.clone()).unwrap();
        let a_words: Vec<u32> = baseline.u32s(tag(b"TEST.A\0\0")).unwrap().to_vec();
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                let err = Artifact::from_vec(flipped)
                    .expect_err(&format!("flip at byte {byte} bit {bit} must not validate"));
                // Must be a typed validation error, and it must never have
                // handed out data first (from_vec is all-or-nothing).
                match err {
                    PersistError::BadMagic { .. }
                    | PersistError::UnsupportedVersion { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. } => {}
                    other => panic!("unexpected error kind for bit flip: {other:?}"),
                }
            }
        }
        assert_eq!(a_words, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_truncation_is_detected() {
        let data = sample_artifact();
        for cut in 0..data.len() {
            let err = Artifact::from_vec(data[..cut].to_vec())
                .expect_err(&format!("truncation to {cut} bytes must not validate"));
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::Corrupt { .. }
                        | PersistError::ChecksumMismatch { .. }
                ),
                "truncation to {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn section_length_lie_is_detected() {
        let data = sample_artifact();
        let table_offset = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
        // Lie about section 0's length (entry bytes 16..24 within the table),
        // then forge the table and header checksums so only the structural
        // check can catch it.
        let mut forged = data.clone();
        let len_at = table_offset + 16;
        forged[len_at..len_at + 8].copy_from_slice(&1_000_000u64.to_le_bytes());
        let table_ck = checksum(&forged[table_offset..]);
        forged[32..40].copy_from_slice(&table_ck.to_le_bytes());
        let header_ck = checksum(&forged[0..40]);
        forged[40..48].copy_from_slice(&header_ck.to_le_bytes());
        assert!(matches!(Artifact::from_vec(forged).unwrap_err(), PersistError::Corrupt { .. }));
    }

    #[test]
    fn empty_artifact_with_no_sections_is_valid() {
        let w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        let data = w.finish().unwrap().into_inner();
        let art = Artifact::from_vec(data).unwrap();
        assert_eq!(art.tags().count(), 0);
    }

    #[test]
    fn empty_file_is_truncated() {
        assert!(matches!(
            Artifact::from_vec(Vec::new()).unwrap_err(),
            PersistError::Truncated { .. }
        ));
    }

    #[test]
    fn odd_length_sections_round_trip() {
        let mut w = ArtifactWriter::new(Cursor::new(Vec::new())).unwrap();
        w.begin_section(tag(b"RAW\0\0\0\0\0")).unwrap();
        w.write_bytes(&[0xAB; 13]).unwrap();
        w.end_section().unwrap();
        w.begin_section(tag(b"AFTER\0\0\0")).unwrap();
        w.write_u64(42).unwrap();
        w.end_section().unwrap();
        let art = Artifact::from_vec(w.finish().unwrap().into_inner()).unwrap();
        assert_eq!(art.section_bytes(tag(b"RAW\0\0\0\0\0")).unwrap(), &[0xAB; 13]);
        assert_eq!(&*art.u64s(tag(b"AFTER\0\0\0")).unwrap(), &[42]);
        // A 13-byte section is not a whole number of u64s.
        assert!(matches!(
            art.u64s(tag(b"RAW\0\0\0\0\0")).unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }
}
