//! Checksums and config fingerprints.
//!
//! [`Checksummer`] is the section checksum: an 8-lane striped xor-multiply
//! hash. Eight independent 64-bit lanes each absorb every eighth word of the
//! input, so the hot loop has no cross-iteration dependency chain and runs at
//! memory bandwidth — checksumming the ~1 GB 580k-vertex G-tree matrix arena
//! must fit inside the < 200 ms cold-start budget. Within a lane each absorbed
//! word is mixed by `lane = (lane ^ word) * ODD`, which is injective in the
//! word (xor is a bijection, multiplication by an odd constant is a bijection
//! mod 2^64), so **any single-word change in the input always changes the
//! checksum** — the property the corruption-fuzz battery leans on.
//!
//! [`Fingerprint`] is the build-config gate: a tagged field hasher. Each field
//! is absorbed with a one-byte type tag plus its little-endian bytes, so
//! reordering or re-typing fields changes the fingerprint even when the raw
//! bytes collide. Index artifacts store the fingerprint of the config they
//! were built under; loads can require it to match.

/// Per-lane multiplier (odd ⇒ multiplication is a bijection mod 2^64).
const LANE_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
/// Finalization multiplier (odd).
const FINAL_MUL: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Distinct odd lane seeds so permuting 64-byte blocks changes the result.
const LANE_SEEDS: [u64; 8] = [
    0x243F_6A88_85A3_08D3,
    0x1319_8A2E_0370_7345,
    0xA409_3822_299F_31D1,
    0x0823_04D0_1310_9A19,
    0x4528_21E6_38D0_1377,
    0xBE54_66CF_34E9_0C6D,
    0xC0AC_29B7_C97C_50DD,
    0x3F84_D5B5_B547_0917,
];

/// Streaming 8-lane checksum over a byte stream.
///
/// Feed bytes with [`update`](Checksummer::update) in any chunking; the result
/// of [`finish`](Checksummer::finish) depends only on the concatenated stream.
#[derive(Clone)]
pub struct Checksummer {
    lanes: [u64; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Checksummer {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksummer {
    /// A fresh checksummer with seeded lanes.
    pub fn new() -> Checksummer {
        Checksummer { lanes: LANE_SEEDS, buf: [0u8; 64], buf_len: 0, total: 0 }
    }

    #[inline]
    fn absorb(lanes: &mut [u64; 8], block: &[u8; 64]) {
        let (words, _) = block.as_chunks::<8>();
        for i in 0..8 {
            let w = u64::from_le_bytes(words[i]);
            lanes[i] = (lanes[i] ^ w).wrapping_mul(LANE_MUL);
        }
    }

    /// Absorbs `data` into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                return; // buffer still partial; keep accumulating
            }
            let block = self.buf;
            Self::absorb(&mut self.lanes, &block);
            self.buf_len = 0;
        }
        // Fixed-size blocks let the compiler drop every bounds check in the
        // hot loop; local lane accumulators keep them in registers across the
        // whole pass instead of round-tripping through `self`. The loop takes
        // two 64-byte blocks per iteration — the same recurrence as feeding
        // [`absorb`] twice, so the checksum value is unchanged — which keeps
        // two multiplies in flight per lane and hides the multiplier latency
        // behind the loads (~7.5 GB/s vs ~4.5 GB/s single-block on the
        // 1-core bench box; the ~1 GB 580k G-tree arena rides this path).
        let (pairs, tail) = data.as_chunks::<128>();
        let mut lanes = self.lanes;
        for pair in pairs {
            let (words, _) = pair.as_chunks::<8>();
            for i in 0..8 {
                let w0 = u64::from_le_bytes(words[i]);
                let w1 = u64::from_le_bytes(words[i + 8]);
                lanes[i] = ((lanes[i] ^ w0).wrapping_mul(LANE_MUL) ^ w1).wrapping_mul(LANE_MUL);
            }
        }
        let (blocks, rem) = tail.as_chunks::<64>();
        for block in blocks {
            Self::absorb(&mut lanes, block);
        }
        self.lanes = lanes;
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finalizes the checksum. The total stream length is folded in, so a
    /// stream and its zero-padded extension hash differently.
    pub fn finish(mut self) -> u64 {
        if self.buf_len > 0 {
            self.buf[self.buf_len..].fill(0);
            let block = self.buf;
            Self::absorb(&mut self.lanes, &block);
        }
        let mut h = self.total ^ 0x9AE1_6A3B_2F90_404F;
        for lane in self.lanes {
            h = (h ^ lane).wrapping_mul(FINAL_MUL);
            h ^= h >> 29;
        }
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 32)
    }
}

/// One-shot convenience wrapper around [`Checksummer`].
pub fn checksum(data: &[u8]) -> u64 {
    let mut c = Checksummer::new();
    c.update(data);
    c.finish()
}

/// Tagged field hasher for build-config fingerprints.
///
/// Every `push_*` call absorbs a type tag byte before the value, so two
/// configs whose raw field bytes happen to coincide under different field
/// types or orders still fingerprint differently. FNV-1a style: tiny inputs,
/// no throughput concerns.
#[derive(Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh fingerprint hasher (FNV-1a offset basis).
    pub fn new() -> Fingerprint {
        Fingerprint { state: 0xCBF2_9CE4_8422_2325 }
    }

    #[inline]
    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a `u64` field.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.mix(&[1]);
        self.mix(&v.to_le_bytes());
        self
    }

    /// Absorbs a `u32` field.
    pub fn push_u32(&mut self, v: u32) -> &mut Self {
        self.mix(&[2]);
        self.mix(&v.to_le_bytes());
        self
    }

    /// Absorbs a `usize` field (hashed as `u64`, portable across word sizes).
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.mix(&[3]);
        self.mix(&(v as u64).to_le_bytes());
        self
    }

    /// Absorbs an `i64` field.
    pub fn push_i64(&mut self, v: i64) -> &mut Self {
        self.mix(&[4]);
        self.mix(&v.to_le_bytes());
        self
    }

    /// Absorbs an `f64` field via its bit pattern.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.mix(&[5]);
        self.mix(&v.to_bits().to_le_bytes());
        self
    }

    /// Absorbs a `bool` field.
    pub fn push_bool(&mut self, v: bool) -> &mut Self {
        self.mix(&[6, u8::from(v)]);
        self
    }

    /// Absorbs a string field (length-prefixed, so concatenations can't collide).
    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.mix(&[7]);
        self.mix(&(v.len() as u64).to_le_bytes());
        self.mix(v.as_bytes());
        self
    }

    /// The final fingerprint value.
    pub fn finish(&self) -> u64 {
        // Avalanche so short inputs still spread over all 64 bits.
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^ (h >> 33)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_does_not_change_checksum() {
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let oneshot = checksum(&data);
        for chunk in [1usize, 3, 7, 13, 64, 65, 100] {
            let mut c = Checksummer::new();
            for piece in data.chunks(chunk) {
                c.update(piece);
            }
            assert_eq!(c.finish(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        // Injectivity argument made concrete: flip every bit of a small buffer.
        let data: Vec<u8> = (0..96u8).collect();
        let base = checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn length_extension_and_truncation_detected() {
        let data = vec![0u8; 128];
        assert_ne!(checksum(&data), checksum(&data[..127]));
        assert_ne!(checksum(&data), checksum(&[0u8; 129]));
        assert_ne!(checksum(&[]), checksum(&[0u8]));
    }

    #[test]
    fn block_permutation_detected() {
        let mut a = vec![0u8; 128];
        a[0] = 1; // block 0 differs from block 1
        let mut b = vec![0u8; 128];
        b[64] = 1;
        assert_ne!(checksum(&a), checksum(&b));
    }

    #[test]
    fn fingerprint_is_order_and_type_sensitive() {
        let mut a = Fingerprint::new();
        a.push_u32(1).push_u32(2);
        let mut b = Fingerprint::new();
        b.push_u32(2).push_u32(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprint::new();
        c.push_u64(1);
        let mut d = Fingerprint::new();
        d.push_i64(1);
        assert_ne!(c.finish(), d.finish());

        let mut e = Fingerprint::new();
        e.push_bool(true);
        let mut f = Fingerprint::new();
        f.push_bool(false);
        assert_ne!(e.finish(), f.finish());
    }
}
