//! The backing storage for a loaded artifact.
//!
//! [`Bytes`] is an immutable byte buffer with two providers:
//!
//! * **Mapped** (Linux/x86_64, not Miri): the artifact file is `mmap`ed
//!   read-only via raw syscalls — the container has no `libc`/`memmap2`
//!   crates, and the kernel ABI is stable. This is the zero-copy cold-start
//!   path: the 1 GB matrix arena is paged in lazily by the kernel.
//! * **Owned** (everywhere else, any mmap failure, and always under Miri):
//!   the file is read into a `Vec<u64>`-backed buffer, which guarantees the
//!   8-byte base alignment that the typed views
//!   ([`SharedSlice`](crate::view::SharedSlice)) rely on. Because this path is
//!   plain safe reads over heap memory, the whole parse/validate/view surface
//!   is exercisable under Miri through in-memory artifacts.
//!
//! Both providers are immutable after construction; `Bytes` hands out only
//! `&[u8]`. The format contract (docs/PERSISTENCE.md) requires artifact files
//! to be treated as immutable once written — rewriting a file while a process
//! has it mapped is outside the contract, exactly as with any mmap-based
//! database file.

use crate::error::PersistError;
use std::path::Path;

/// Raw Linux mmap/munmap syscalls. The workspace is offline (no `libc`), so
/// the two calls the mapped path needs are made directly; numbers and flag
/// values are from the stable x86_64 Linux syscall ABI.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod sys {
    use std::arch::asm;

    const SYS_MMAP: u64 = 9;
    const SYS_MUNMAP: u64 = 11;
    const PROT_READ: u64 = 1;
    const MAP_PRIVATE: u64 = 2;

    /// Maps `len` bytes of `fd` read-only and private. Returns the page-aligned
    /// base address, or `Err(-errno)`.
    ///
    /// # Safety
    ///
    /// `fd` must be an open, readable file descriptor whose file is at least
    /// `len` bytes long. The caller must pair the returned mapping with exactly
    /// one [`munmap`] call and must not let the file shrink or change while
    /// the mapping is referenced (the artifact-immutability contract).
    pub(super) unsafe fn mmap_file(fd: i32, len: usize) -> Result<*const u8, i64> {
        let ret: i64;
        // SAFETY: the `syscall` instruction with the kernel's mmap ABI —
        // args in rdi/rsi/rdx/r10/r8/r9, result in rax, rcx/r11 clobbered by
        // the kernel. A fresh PROT_READ|MAP_PRIVATE mapping at a kernel-chosen
        // address cannot alias any memory the compiler knows about.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MMAP as i64 => ret,
                in("rdi") 0u64,
                in("rsi") len as u64,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as i64,
                in("r9") 0u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // The kernel signals errors as small negative values in rax.
        if (-4095..0).contains(&ret) {
            Err(ret)
        } else {
            Ok(ret as usize as *const u8)
        }
    }

    /// Unmaps a mapping created by [`mmap_file`].
    ///
    /// # Safety
    ///
    /// `(ptr, len)` must be exactly the base address and length of a live
    /// mapping returned by [`mmap_file`], not yet unmapped, with no
    /// outstanding references into it.
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        let ret: i64;
        // SAFETY: munmap over a region this module mapped; the caller
        // guarantees no references into it remain.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP as i64 => ret,
                in("rdi") ptr as u64,
                in("rsi") len as u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        debug_assert!(ret == 0, "munmap returned {ret}");
    }
}

enum Inner {
    /// Heap-backed storage. The `Vec<u64>` element type guarantees the base
    /// pointer is 8-aligned; `len` is the byte length actually used (the last
    /// word may be zero-padded).
    Owned { words: Vec<u64>, len: usize },
    /// A read-only file mapping (page-aligned, hence also 8-aligned).
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    Mapped { ptr: *const u8, len: usize },
}

/// An immutable, 8-aligned byte buffer holding a whole artifact.
///
/// Obtained from [`Bytes::open`] (mmap when available) or [`Bytes::from_vec`]
/// (owned; the Miri-friendly path). Shared between typed views via
/// `Arc<Bytes>`.
pub struct Bytes {
    inner: Inner,
}

// SAFETY: both variants are immutable after construction and only ever hand
// out shared `&[u8]`. The raw pointer variant is a private, read-only file
// mapping owned exclusively by this value until Drop.
unsafe impl Send for Bytes {}
// SAFETY: as above — no interior mutability in either variant.
unsafe impl Sync for Bytes {}

impl Bytes {
    /// Wraps an in-memory artifact image. Copies into 8-aligned storage.
    pub fn from_vec(bytes: Vec<u8>) -> Bytes {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(w);
        }
        Bytes { inner: Inner::Owned { words, len } }
    }

    /// Opens `path`, preferring a zero-copy mmap and falling back to reading
    /// the file into an owned buffer (always the case under Miri or off
    /// Linux/x86_64).
    pub fn open(path: &Path) -> Result<Bytes, PersistError> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
        if let Ok(bytes) = Self::open_mapped(path) {
            return Ok(bytes);
        }
        let data = std::fs::read(path)
            .map_err(|source| PersistError::Io { context: "reading artifact file", source })?;
        Ok(Bytes::from_vec(data))
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    fn open_mapped(path: &Path) -> Result<Bytes, PersistError> {
        use std::os::fd::AsRawFd;
        let file = std::fs::File::open(path)
            .map_err(|source| PersistError::Io { context: "opening artifact file", source })?;
        let len = file
            .metadata()
            .map_err(|source| PersistError::Io { context: "reading artifact metadata", source })?
            .len() as usize;
        if len == 0 {
            return Ok(Bytes::from_vec(Vec::new()));
        }
        // SAFETY: `file` is open and readable, `len` is its current size, and
        // the mapping is paired with exactly one munmap in `Drop`. Artifact
        // files are immutable once written (format contract), so the mapped
        // bytes are stable for the mapping's lifetime.
        let ptr = unsafe { sys::mmap_file(file.as_raw_fd(), len) }.map_err(|neg_errno| {
            PersistError::Io {
                context: "mmap of artifact file",
                source: std::io::Error::from_raw_os_error(-neg_errno as i32),
            }
        })?;
        // The mapping outlives the fd; `file` closes here by design.
        Ok(Bytes { inner: Inner::Mapped { ptr, len } })
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Owned { len, .. } => *len,
            #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
            Inner::Mapped { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this buffer is a file mapping (false: owned heap memory).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned { .. } => false,
            #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
            Inner::Mapped { .. } => true,
        }
    }

    /// The buffer contents. The base pointer is always 8-aligned.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned { words, len } => {
                debug_assert!(*len <= words.len() * 8);
                // SAFETY: `words` owns at least `len` initialised bytes
                // (zero-padded to a word boundary at construction); `u8` has
                // alignment 1; the borrow of `self` keeps the Vec alive.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: `(ptr, len)` is a live PROT_READ mapping owned by
                // this value; it stays mapped until Drop, and the borrow of
                // `self` prevents Drop from running while the slice is alive.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
        if let Inner::Mapped { ptr, len } = &self.inner {
            // SAFETY: the mapping was created by `open_mapped` and is dropped
            // exactly once; `&mut self` proves no outstanding borrows.
            unsafe { sys::munmap(*ptr, *len) };
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips_unaligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let data: Vec<u8> = (0..len as u32).map(|v| (v * 37 + 11) as u8).collect();
            let bytes = Bytes::from_vec(data.clone());
            assert_eq!(bytes.as_slice(), &data[..]);
            assert_eq!(bytes.len(), len);
            assert!(!bytes.is_mapped());
            assert_eq!(bytes.as_slice().as_ptr() as usize % 8, 0, "8-aligned base");
        }
    }

    #[cfg(not(miri))]
    #[test]
    fn open_reads_files_and_matches_owned() {
        let dir = std::env::temp_dir().join("rnknn-persist-buffer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buf.bin");
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let opened = Bytes::open(&path).unwrap();
        assert_eq!(opened.as_slice(), &data[..]);
        assert_eq!(opened.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(not(miri))]
    #[test]
    fn open_missing_file_is_io_error() {
        let err = Bytes::open(Path::new("/nonexistent/rnknn-persist-missing.bin")).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
    }
}
