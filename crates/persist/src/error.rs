//! The typed error surface of artifact loading.
//!
//! Every way an artifact can be unusable — I/O failure, wrong file, newer
//! format, truncation, bit rot, structural lies, mismatched build config —
//! maps to one variant with an actionable message. Loading never panics and
//! never hands out partially-validated data.

use std::fmt;

/// Why an artifact could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O operation failed.
    Io {
        /// What the operation was doing (e.g. `"writing artifact"`).
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the rnknn artifact magic.
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version stored in the artifact.
        found: u32,
        /// The single version this build reads ([`crate::FORMAT_VERSION`]).
        supported: u32,
    },
    /// The file is shorter than a declared structure requires.
    Truncated {
        /// Which structure could not be read.
        what: String,
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// The section (or `"header"` / `"section table"`).
        section: String,
        /// Checksum recorded in the artifact.
        stored: u64,
        /// Checksum computed over the bytes.
        computed: u64,
    },
    /// A section this load requires is not present in the artifact.
    MissingSection {
        /// The missing section's tag.
        section: String,
    },
    /// A section's contents fail structural validation (bounds, monotonicity,
    /// cross-section consistency) even though its checksum matched.
    Corrupt {
        /// The offending section.
        section: String,
        /// What exactly is inconsistent.
        detail: String,
    },
    /// The artifact was built under a different index configuration than the
    /// caller requested.
    ConfigMismatch {
        /// Which index ("ch", "gtree").
        index: &'static str,
        /// Fingerprint stored in the artifact.
        stored: u64,
        /// Fingerprint of the requested configuration.
        expected: u64,
    },
    /// The in-memory structure cannot be represented in the format (e.g. a
    /// G-tree built with a hash-table matrix layout).
    Unsupported {
        /// Why the save was refused.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => {
                write!(f, "I/O error while {context}: {source}")
            }
            PersistError::BadMagic { found } => write!(
                f,
                "not an rnknn index artifact (file starts with {found:02x?}, expected {:02x?}) \
                 — is this the right file?",
                crate::MAGIC
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not readable by this build (which supports \
                 version {supported}); re-save the artifact with this binary or use a matching one"
            ),
            PersistError::Truncated { what, needed, available } => write!(
                f,
                "artifact truncated while reading {what}: need {needed} bytes, have {available} \
                 — the file was cut short; regenerate it with --save"
            ),
            PersistError::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in `{section}` (stored {stored:#018x}, computed \
                 {computed:#018x}) — the artifact is corrupt; regenerate it with --save"
            ),
            PersistError::MissingSection { section } => write!(
                f,
                "artifact has no `{section}` section — it was saved without this index; \
                 re-save from an engine that built it"
            ),
            PersistError::Corrupt { section, detail } => write!(
                f,
                "structural validation failed in `{section}`: {detail} — refusing to serve \
                 queries from this artifact; regenerate it with --save"
            ),
            PersistError::ConfigMismatch { index, stored, expected } => write!(
                f,
                "artifact's {index} index was built under config fingerprint {stored:#018x}, \
                 but the requested config fingerprints to {expected:#018x}; rebuild the \
                 artifact under the new config or load it without a config constraint"
            ),
            PersistError::Unsupported { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    /// Convenience constructor for [`PersistError::Corrupt`].
    pub fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> PersistError {
        PersistError::Corrupt { section: section.into(), detail: detail.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = PersistError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("re-save"));
        let e =
            PersistError::ChecksumMismatch { section: "CH.RANK".into(), stored: 1, computed: 2 };
        assert!(e.to_string().contains("CH.RANK"));
        assert!(e.to_string().contains("corrupt"));
        let e = PersistError::ConfigMismatch { index: "gtree", stored: 3, expected: 4 };
        assert!(e.to_string().contains("gtree"));
        let io = PersistError::Io {
            context: "reading artifact",
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(std::error::Error::source(&io).is_some());
    }
}
