//! Versioned, checksummed on-disk persistence for the rnknn indexes.
//!
//! A production service cannot pay minutes of CH + G-tree preprocessing per
//! process start; the indexes are flat arrays (rank permutations, shortcut CSR,
//! border-distance matrix arenas) that should load in milliseconds. This crate
//! provides the storage substrate the index crates build their `save`/`load`
//! paths on:
//!
//! * [`format::ArtifactWriter`] — streams tagged, checksummed **sections** into
//!   any `Write + Seek` sink (a file, or an in-memory `Cursor<Vec<u8>>`). The
//!   header carries a magic number, a format-version gate and whole-file
//!   bookkeeping; every section records its own length and checksum.
//! * [`format::Artifact`] — the validated read side. Opening an artifact
//!   verifies the magic, version, declared file length, section-table bounds
//!   and **every** section checksum before any data is handed out; every
//!   failure is a typed [`PersistError`], never a panic or a silent wrong read.
//! * [`buffer::Bytes`] — the backing storage: a zero-copy `mmap` of the file on
//!   Linux/x86_64 (raw syscalls — no external crates), falling back to an
//!   owned, 8-aligned heap buffer everywhere else **and under Miri**, so the
//!   entire parsing/validation surface is Miri-checkable through the in-memory
//!   path.
//! * [`view::PVec`] / [`view::SharedSlice`] — the safe, lifetime-free view
//!   layer: a `PVec<T>` is either an owned `Vec<T>` (freshly built index) or a
//!   typed window into an `Arc<Bytes>` (loaded index). Index structs store
//!   `PVec`s and deref to slices, so the query hot paths are identical for
//!   built and mapped indexes.
//! * [`hash::Checksummer`] / [`hash::Fingerprint`] — the 8-lane section
//!   checksum and the tagged config-fingerprint hasher (build-config gate).
//!
//! This crate is one of the two permitted `unsafe` sites in the workspace
//! (`cargo xtask lint`); every site carries a `// SAFETY:` contract. See
//! `docs/PERSISTENCE.md` for the format layout and the safety argument.

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

#[cfg(not(target_endian = "little"))]
compile_error!(
    "rnknn-persist stores artifacts little-endian and reads them zero-copy; \
     big-endian targets are not supported"
);

pub mod buffer;
pub mod error;
pub mod format;
pub mod hash;
pub mod view;

pub use buffer::Bytes;
pub use error::PersistError;
pub use format::{Artifact, ArtifactWriter, MetaReader, MetaWriter, Tag, FORMAT_VERSION, MAGIC};
pub use hash::{checksum, Checksummer, Fingerprint};
pub use view::{pod_bytes, PVec, Pod, SharedSlice};
