//! Travel-time dispatch: kNN by *travel time* rather than distance (Section 7.5) — the
//! scenario of dispatching the nearest ambulances/taxis, where minutes matter and the
//! Euclidean bound must be scaled by the maximum road speed.
//!
//! ```sh
//! cargo run --release -p rnknn-examples --bin travel_time_dispatch
//! ```

use rnknn::engine::{Engine, EngineConfig, Method};
use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
use rnknn_graph::EdgeWeightKind;
use rnknn_objects::uniform;

fn main() {
    let network = RoadNetwork::generate(&GeneratorConfig::new(9_000, 99));

    // The same physical network, once with distance weights and once with travel times.
    let distance_graph = network.graph(EdgeWeightKind::Distance);
    let time_graph = network.graph(EdgeWeightKind::Time);

    // SILC is not needed for this scenario.
    let config = EngineConfig { build_silc: false, ..Default::default() };
    let mut by_distance = Engine::build(distance_graph, &config);
    let mut by_time = Engine::build(time_graph, &config);

    // 30 idle vehicles scattered over the network.
    let vehicles =
        uniform(by_distance.graph(), 30.0 / by_distance.graph().num_vertices() as f64, 3);
    println!("dispatching among {} vehicles", vehicles.len());
    by_distance.set_objects(vehicles.clone());
    by_time.set_objects(vehicles);

    let incident = (by_distance.graph().num_vertices() / 4) as u32;
    let nearest_by_distance =
        by_distance.query(Method::IerGtree, incident, 3).expect("G-tree built").result;
    let nearest_by_time =
        by_time.query(Method::IerGtree, incident, 3).expect("G-tree built").result;

    println!("\nincident at vertex {incident}");
    println!("3 nearest vehicles by travel DISTANCE: {nearest_by_distance:?}");
    println!("3 nearest vehicles by travel TIME:     {nearest_by_time:?}");

    let same: usize = nearest_by_distance
        .iter()
        .filter(|(v, _)| nearest_by_time.iter().any(|(w, _)| w == v))
        .count();
    println!(
        "\n{} of 3 vehicles coincide — highways make the travel-time ranking differ from the \
         travel-distance ranking, which is why the paper evaluates both (Section 7.5).",
        same
    );
}
