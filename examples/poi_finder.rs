//! POI finder: the motivating scenario of the paper's introduction — "find the k
//! nearest restaurants / hospitals / schools" — over several POI categories sharing one
//! road-network index (decoupled indexing, Section 2.2).
//!
//! ```sh
//! cargo run --release -p rnknn-examples --bin poi_finder
//! ```

use rnknn::engine::{Engine, EngineConfig, Method};
use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
use rnknn_graph::EdgeWeightKind;
use rnknn_objects::PoiSets;

fn main() {
    let network = RoadNetwork::generate(&GeneratorConfig::new(24_000, 7));
    let graph = network.graph(EdgeWeightKind::Distance);
    println!("city-scale network: {} vertices / {} edges", graph.num_vertices(), graph.num_edges());

    // One road-network index build serves every POI category.
    let mut engine = Engine::build(graph, &EngineConfig::minimal());
    let pois = PoiSets::generate(engine.graph(), 11);
    let user_location = (engine.graph().num_vertices() / 2) as u32;

    println!("\n5 nearest POIs of each category from vertex {user_location}:");
    println!("{:<12} {:>8} {:>30}", "category", "|O|", "network distances");
    for (category, set) in pois.iter() {
        engine.set_objects(set.clone());
        let output = engine.query(Method::Gtree, user_location, 5).expect("G-tree built");
        println!("{:<12} {:>8} {:>30?}", category.name(), set.len(), output.distances());
    }

    // Object sets that change often (e.g. available parking) only need the cheap object
    // index rebuilt — demonstrate by perturbing one category and re-querying.
    let hospitals = pois.get(rnknn_objects::PoiCategory::Hospitals);
    engine.set_objects(hospitals.clone());
    let before = engine.query(Method::Road, user_location, 3).expect("ROAD built");
    println!("\nnearest hospitals (ROAD): {:?}", before.distances());
    println!("(swapping object sets reused the ROAD / G-tree road-network indexes)");
}
