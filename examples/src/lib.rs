//! Example crate: the runnable binaries in this directory demonstrate the public
//! `rnknn` API. This library target is intentionally empty.

#![forbid(unsafe_code)]
