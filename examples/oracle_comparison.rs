//! IER oracle comparison: reproduce the spirit of Figure 4 interactively — the same IER
//! kNN query answered with each shortest-path oracle, showing why "IER revisited" with a
//! fast oracle beats the classic Dijkstra-based IER.
//!
//! ```sh
//! cargo run --release -p rnknn-examples --bin oracle_comparison
//! ```

use std::time::Instant;

use rnknn::ier::{
    AStarOracle, ChOracle, DijkstraOracle, DistanceOracle, GtreeOracle, IerSearch, PhlOracle,
    TnrOracle,
};
use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
use rnknn_graph::{EdgeWeightKind, NodeId};
use rnknn_objects::{uniform, ObjectRTree};

fn time_oracle<O: DistanceOracle>(
    graph: &rnknn_graph::Graph,
    oracle: O,
    rtree: &ObjectRTree,
    objects: &rnknn_objects::ObjectSet,
    queries: &[NodeId],
    k: usize,
) -> (String, f64, Vec<u64>) {
    let mut ier = IerSearch::new(graph, oracle);
    let name = ier.oracle_name().to_string();
    let start = Instant::now();
    let mut last = Vec::new();
    for &q in queries {
        last = ier.knn(q, k, rtree, objects).iter().map(|&(_, d)| d).collect();
    }
    let avg_micros = start.elapsed().as_micros() as f64 / queries.len() as f64;
    (name, avg_micros, last)
}

fn main() {
    // 20k was far past the CH preprocessing wall before priority caching and
    // hop-limited witness searches; now the whole oracle build is dominated by the
    // other indexes.
    let network = RoadNetwork::generate(&GeneratorConfig::new(20_000, 4));
    let graph = network.graph(EdgeWeightKind::Distance);
    let objects = uniform(&graph, 0.001, 17);
    let rtree = ObjectRTree::build(&graph, &objects);
    println!(
        "IER with different network-distance oracles ({} vertices, {} objects, k=10)",
        graph.num_vertices(),
        objects.len()
    );

    println!("building oracles...");
    let ch_start = Instant::now();
    let ch = rnknn::ch::ContractionHierarchy::build_with_config(
        &graph,
        // The defaults already scale; spelled out here to showcase the knobs.
        &rnknn::ch::ChConfig { witness_settle_limit: 256, ..Default::default() },
    );
    println!("  CH: {} shortcuts in {:.2}s", ch.num_shortcuts(), ch_start.elapsed().as_secs_f64());
    let phl = rnknn::phl::HubLabels::build_with_ch(&graph, &ch).expect("label budget");
    let tnr = rnknn::tnr::TransitNodeRouting::build_from_ch(
        &graph,
        ch.clone(),
        rnknn::tnr::TnrConfig::default(),
    );
    let gtree = rnknn::gtree::Gtree::build(&graph);

    let n = graph.num_vertices() as NodeId;
    let queries: Vec<NodeId> = (0..40u32).map(|i| (i * 2_654_435) % n).collect();
    let k = 10;

    let rows = vec![
        time_oracle(&graph, DijkstraOracle::new(&graph), &rtree, &objects, &queries, k),
        time_oracle(&graph, AStarOracle::new(&graph), &rtree, &objects, &queries, k),
        time_oracle(&graph, ChOracle::new(&ch), &rtree, &objects, &queries, k),
        time_oracle(&graph, TnrOracle::new(&tnr), &rtree, &objects, &queries, k),
        time_oracle(&graph, GtreeOracle::new(&gtree, &graph), &rtree, &objects, &queries, k),
        time_oracle(&graph, PhlOracle::new(&phl), &rtree, &objects, &queries, k),
    ];

    let reference = rows[0].2.clone();
    println!("\n{:<10} {:>14}   result", "oracle", "avg query (µs)");
    for (name, micros, distances) in &rows {
        assert_eq!(distances, &reference, "all oracles must return identical kNN results");
        println!("{:<10} {:>14.1}   {:?}", name, micros, &distances[..3.min(distances.len())]);
    }
    println!("\nAll oracles return identical results; only the query time differs (Figure 4).");
}
