//! Quickstart: build a road network, inject an object set and answer kNN queries with
//! every available method.
//!
//! ```sh
//! cargo run --release -p rnknn-examples --bin quickstart
//! ```

use rnknn::engine::{Engine, EngineConfig, Method};
use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
use rnknn_graph::EdgeWeightKind;
use rnknn_objects::uniform;

fn main() {
    // 1. A synthetic road network (substitute a DIMACS dataset via rnknn_graph::dimacs
    //    if you have one on disk).
    // 8k vertices keeps the full index build (SILC and CH are the expensive ones)
    // under half a minute; scale up freely when you are not just demoing.
    let network = RoadNetwork::generate(&GeneratorConfig::new(8_000, 42));
    let graph = network.graph(EdgeWeightKind::Distance);
    println!("road network: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // 2. Build the road-network indexes once.
    let config = EngineConfig { build_tnr: true, ..Default::default() };
    let mut engine = Engine::build(graph, &config);
    let times = engine.build_times();
    println!(
        "index build times: G-tree {:.1} ms, ROAD {:.1} ms, SILC {:.1} ms, CH {:.1} ms, PHL {:.1} ms",
        times.gtree_micros as f64 / 1e3,
        times.road_micros as f64 / 1e3,
        times.silc_micros as f64 / 1e3,
        times.ch_micros as f64 / 1e3,
        times.phl_micros as f64 / 1e3,
    );

    // 3. Inject an object set (restaurants, ATMs, ...). Object indexes are decoupled
    //    from the road-network indexes and cheap to rebuild.
    let objects = uniform(engine.graph(), 0.001, 7);
    println!("object set: {} objects (density 0.001)", objects.len());
    engine.set_objects(objects);

    // 4. Query with every method; they all return the same answer. `query` is
    //    fallible — a method whose index was not built reports an error value
    //    instead of panicking — and every answer carries unified QueryStats.
    let query = (engine.graph().num_vertices() / 3) as u32;
    let k = 5;
    for method in Method::all() {
        match engine.query(method, query, k) {
            Ok(output) => println!(
                "{:<10} {:>7} µs  distances: {:?}  (expanded {}, oracle calls {})",
                method.name(),
                output.stats.elapsed_micros,
                output.distances(),
                output.stats.nodes_expanded,
                output.stats.oracle_calls,
            ),
            Err(e) => println!("{:<10} unavailable: {e}", method.name()),
        }
    }

    // 5. The engine is Sync: fan a whole workload across threads.
    let n = engine.graph().num_vertices() as u32;
    let workload: Vec<u32> = (0..10_000u64).map(|i| ((i * 2_654_435) % n as u64) as u32).collect();
    let start = std::time::Instant::now();
    let batch = engine.knn_batch(Method::IerPhl, &workload, k).expect("PHL built above");
    println!(
        "\nknn_batch: {} IER-PHL queries in {:.1} ms across {} threads",
        batch.len(),
        start.elapsed().as_secs_f64() * 1e3,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );
}
