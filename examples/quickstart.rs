//! Quickstart: build a road network, inject an object set and answer kNN queries with
//! every available method.
//!
//! ```sh
//! cargo run --release -p rnknn-examples --bin quickstart
//! ```

use rnknn::engine::{Engine, EngineConfig, Method};
use rnknn_graph::generator::{GeneratorConfig, RoadNetwork};
use rnknn_graph::EdgeWeightKind;
use rnknn_objects::uniform;

fn main() {
    // 1. A synthetic road network (substitute a DIMACS dataset via rnknn_graph::dimacs
    //    if you have one on disk).
    let network = RoadNetwork::generate(&GeneratorConfig::new(20_000, 42));
    let graph = network.graph(EdgeWeightKind::Distance);
    println!(
        "road network: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Build the road-network indexes once.
    let mut config = EngineConfig::default();
    config.build_tnr = true;
    let mut engine = Engine::build(graph, &config);
    let times = engine.build_times();
    println!(
        "index build times: G-tree {:.1} ms, ROAD {:.1} ms, SILC {:.1} ms, CH {:.1} ms, PHL {:.1} ms",
        times.gtree_micros as f64 / 1e3,
        times.road_micros as f64 / 1e3,
        times.silc_micros as f64 / 1e3,
        times.ch_micros as f64 / 1e3,
        times.phl_micros as f64 / 1e3,
    );

    // 3. Inject an object set (restaurants, ATMs, ...). Object indexes are decoupled
    //    from the road-network indexes and cheap to rebuild.
    let objects = uniform(engine.graph(), 0.001, 7);
    println!("object set: {} objects (density 0.001)", objects.len());
    engine.set_objects(objects);

    // 4. Query with every method; they all return the same answer.
    let query = (engine.graph().num_vertices() / 3) as u32;
    let k = 5;
    for method in [
        Method::Ine,
        Method::Road,
        Method::Gtree,
        Method::IerGtree,
        Method::IerPhl,
        Method::IerTnr,
        Method::DisBrw,
    ] {
        if !engine.supports(method) {
            println!("{:<10} (index not built for this configuration)", method.name());
            continue;
        }
        let start = std::time::Instant::now();
        let result = engine.knn(method, query, k);
        let micros = start.elapsed().as_micros();
        let distances: Vec<_> = result.iter().map(|&(_, d)| d).collect();
        println!("{:<10} {:>7} µs  kNN distances: {:?}", method.name(), micros, distances);
    }
}
